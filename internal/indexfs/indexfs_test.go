package indexfs

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"lambdafs/internal/clock"
	"lambdafs/internal/faas"
	"lambdafs/internal/rpc"
)

func fastCfg() Config {
	cfg := DefaultConfig()
	cfg.NetOneWay = 0
	cfg.OpCPUCost = 0
	cfg.LSM.PutLatency = 0
	cfg.LSM.ProbeLatency = 0
	cfg.LSM.FlushPerEntry = 0
	cfg.LSM.CompactPerEntry = 0
	return cfg
}

func TestIndexFSMknodGetattr(t *testing.T) {
	c := New(clock.NewScaled(0), fastCfg())
	cl := c.NewClient("c1")
	if err := cl.Mknod("/d/f1"); err != nil {
		t.Fatal(err)
	}
	a, ok, err := cl.Getattr("/d/f1")
	if err != nil || !ok || a.Mode != 0o644 {
		t.Fatalf("getattr = %+v %v %v", a, ok, err)
	}
	if _, ok, _ := cl.Getattr("/d/missing"); ok {
		t.Fatal("phantom attr")
	}
	if err := cl.Mknod("bad"); err == nil {
		t.Fatal("invalid path accepted")
	}
	mk, gets := c.Ops()
	if mk != 1 || gets != 2 {
		t.Fatalf("ops = %d/%d", mk, gets)
	}
}

func TestIndexFSPartitioningByDirectory(t *testing.T) {
	c := New(clock.NewScaled(0), fastCfg())
	cl := c.NewClient("c1")
	// All files of a directory live in the same partition.
	for i := 0; i < 20; i++ {
		if err := cl.Mknod(fmt.Sprintf("/dir/f%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	owner := c.serverFor("/dir/f0")
	if got := len(owner.db.Scan("/dir/")); got != 20 {
		t.Fatalf("owner partition holds %d of 20 rows", got)
	}
	for _, s := range c.servers {
		if s != owner && len(s.db.Scan("/dir/")) != 0 {
			t.Fatal("directory rows leaked across partitions")
		}
	}
}

func TestIndexFSConcurrentClients(t *testing.T) {
	c := New(clock.NewScaled(0), fastCfg())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := c.NewClient(fmt.Sprintf("c%d", w))
			for i := 0; i < 100; i++ {
				p := fmt.Sprintf("/w%d/f%d", w, i)
				if err := cl.Mknod(p); err != nil {
					t.Errorf("mknod: %v", err)
					return
				}
			}
			for i := 0; i < 100; i++ {
				p := fmt.Sprintf("/w%d/f%d", w, i)
				if _, ok, _ := cl.Getattr(p); !ok {
					t.Errorf("lost %s", p)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if st := c.LSMStats(); st.Puts != 800 {
		t.Fatalf("lsm puts = %d", st.Puts)
	}
}

func newLambda(t *testing.T) (*LambdaSystem, *rpc.VM, *faas.Platform) {
	t.Helper()
	clk := clock.NewScaled(0)
	fCfg := faas.DefaultConfig()
	fCfg.ColdStart = 0
	fCfg.GatewayLatency = 0
	fCfg.IdleReclaim = 0
	p := faas.New(clk, fCfg)
	t.Cleanup(p.Close)
	lCfg := DefaultLambdaConfig()
	lCfg.Deployments = 4
	lCfg.OpCPUCost = 0
	lCfg.LSM.PutLatency = 0
	lCfg.LSM.ProbeLatency = 0
	lCfg.LSM.FlushPerEntry = 0
	lCfg.LSM.CompactPerEntry = 0
	sys := NewLambda(clk, p, lCfg)
	rCfg := rpc.DefaultConfig()
	rCfg.TCPOneWay = 0
	rCfg.HTTPReplaceProb = 0
	rCfg.Hedging = false
	rCfg.BackoffBase = time.Millisecond
	vm := rpc.NewVM(clk, rCfg)
	return sys, vm, p
}

func TestLambdaIndexFSLifecycle(t *testing.T) {
	sys, vm, _ := newLambda(t)
	c := sys.NewClient(vm, "c1")
	if err := c.Mknod("/λ/f"); err != nil {
		t.Fatal(err)
	}
	a, ok, err := c.Getattr("/λ/f")
	if err != nil || !ok || a.Mode != 0o644 {
		t.Fatalf("getattr = %+v %v %v", a, ok, err)
	}
	if _, ok, _ := c.Getattr("/λ/ghost"); ok {
		t.Fatal("phantom attr")
	}
}

func TestLambdaIndexFSCacheHit(t *testing.T) {
	sys, vm, _ := newLambda(t)
	c := sys.NewClient(vm, "c1")
	if err := c.Mknod("/hit/f"); err != nil {
		t.Fatal(err)
	}
	// The function that served the mknod caches the attr; the getattr
	// routed to the same deployment should be servable without the LSM.
	before := lsmGets(sys)
	if _, ok, err := c.Getattr("/hit/f"); !ok || err != nil {
		t.Fatalf("getattr: %v %v", ok, err)
	}
	if _, ok, err := c.Getattr("/hit/f"); !ok || err != nil {
		t.Fatalf("getattr: %v %v", ok, err)
	}
	after := lsmGets(sys)
	if after-before > 1 {
		t.Fatalf("cache ineffective: %d LSM gets for cached reads", after-before)
	}
}

func lsmGets(sys *LambdaSystem) uint64 {
	var n uint64
	for _, db := range sys.lsms {
		n += db.Stats().Gets
	}
	return n
}

func TestLambdaIndexFSPersistsThroughInstanceDeath(t *testing.T) {
	sys, vm, p := newLambda(t)
	c := sys.NewClient(vm, "c1")
	if err := c.Mknod("/durable/f"); err != nil {
		t.Fatal(err)
	}
	// Kill every instance: the cache dies, LevelDB survives.
	for dep := 0; dep < 4; dep++ {
		for p.KillOneInstance(dep) {
		}
	}
	if _, ok, err := c.Getattr("/durable/f"); !ok || err != nil {
		t.Fatalf("metadata lost with instances: %v %v", ok, err)
	}
}

func TestLambdaIndexFSConcurrentTreeTest(t *testing.T) {
	sys, vm, _ := newLambda(t)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := sys.NewClient(vm, fmt.Sprintf("c%d", w))
			for i := 0; i < 50; i++ {
				if err := c.Mknod(fmt.Sprintf("/tt%d/f%d", w, i)); err != nil {
					t.Errorf("mknod: %v", err)
					return
				}
			}
			for i := 0; i < 50; i++ {
				if _, ok, err := c.Getattr(fmt.Sprintf("/tt%d/f%d", w, i)); !ok || err != nil {
					t.Errorf("getattr: %v %v", ok, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestAttrCodecRoundTrip(t *testing.T) {
	a := Attr{Mode: 0o755, Size: 1 << 30, Ctime: 123456789}
	got, ok := decodeAttr(encodeAttr(a))
	if !ok || got != a {
		t.Fatalf("round trip = %+v %v", got, ok)
	}
	if _, ok := decodeAttr([]byte("short")); ok {
		t.Fatal("bad length accepted")
	}
}
