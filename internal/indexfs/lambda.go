package indexfs

import (
	"sync"
	"time"

	"lambdafs/internal/clock"
	"lambdafs/internal/faas"
	"lambdafs/internal/lsm"
	"lambdafs/internal/namespace"
	"lambdafs/internal/partition"
	"lambdafs/internal/rpc"
)

// LambdaConfig shapes λIndexFS: serverless caching functions in front of
// the LevelDB partitions (Figure 7b).
type LambdaConfig struct {
	// Deployments is the number of function deployments; each owns one
	// LevelDB partition (matching the directory-hash partitioning).
	Deployments      int
	VCPU             float64
	RAMGB            float64
	ConcurrencyLevel int
	// MaxInstancesPerDeployment caps auto-scaling (0 = unlimited).
	MaxInstancesPerDeployment int
	// MinInstancesPerDeployment pre-warms a floor of instances so no
	// deployment starves behind a fully-committed pool.
	MinInstancesPerDeployment int
	// OpCPUCost is function CPU per metadata operation.
	OpCPUCost time.Duration
	// LSM tunes the backing LevelDB partitions.
	LSM lsm.Config
}

// DefaultLambdaConfig matches the §5.7 OpenWhisk deployment.
func DefaultLambdaConfig() LambdaConfig {
	return LambdaConfig{
		Deployments:               8,
		VCPU:                      2,
		RAMGB:                     8,
		ConcurrencyLevel:          4,
		MinInstancesPerDeployment: 1,
		OpCPUCost:                 300 * time.Microsecond,
		LSM:                       lsm.DefaultConfig(),
	}
}

// LambdaSystem is a running λIndexFS deployment.
type LambdaSystem struct {
	clk      clock.Clock
	platform *faas.Platform
	ring     *partition.Ring
	lsms     []*lsm.DB
	cfg      LambdaConfig
}

// NewLambda registers the λIndexFS function deployments.
func NewLambda(clk clock.Clock, platform *faas.Platform, cfg LambdaConfig) *LambdaSystem {
	if cfg.Deployments <= 0 {
		cfg.Deployments = 1
	}
	s := &LambdaSystem{
		clk:      clk,
		platform: platform,
		ring:     partition.NewRing(cfg.Deployments, 0),
		cfg:      cfg,
	}
	for i := 0; i < cfg.Deployments; i++ {
		s.lsms = append(s.lsms, lsm.New(clk, cfg.LSM))
	}
	opts := faas.DeploymentOptions{
		VCPU:             cfg.VCPU,
		RAMGB:            cfg.RAMGB,
		ConcurrencyLevel: cfg.ConcurrencyLevel,
		MaxInstances:     cfg.MaxInstancesPerDeployment,
		MinInstances:     cfg.MinInstancesPerDeployment,
	}
	for i := 0; i < cfg.Deployments; i++ {
		db := s.lsms[i]
		platform.Register("indexfn", func(inst *faas.Instance) faas.App {
			return newIndexFn(inst, db, cfg.OpCPUCost)
		}, opts)
	}
	return s
}

// Ring exposes the partitioning (clients route with it).
func (s *LambdaSystem) Ring() *partition.Ring { return s.ring }

// Invoke implements rpc.Invoker.
func (s *LambdaSystem) Invoke(dep int, payload any) (any, error) {
	return s.platform.Invoke(dep, payload)
}

// NewClient creates a λIndexFS client on vm — λFS's client library
// operating on the tree-test op mapping (Mknod → OpCreate, Getattr →
// OpStat).
func (s *LambdaSystem) NewClient(vm *rpc.VM, id string) *LambdaClient {
	return &LambdaClient{inner: vm.NewClient(id, s.ring, s)}
}

// LambdaClient wraps the λFS client with tree-test verbs.
type LambdaClient struct {
	inner *rpc.Client
}

// Mknod creates the metadata row for path.
func (c *LambdaClient) Mknod(path string) error {
	resp, err := c.inner.Do(namespace.OpCreate, path, "")
	if err != nil {
		return err
	}
	return resp.Error()
}

// Getattr reads the metadata row for path.
func (c *LambdaClient) Getattr(path string) (Attr, bool, error) {
	resp, err := c.inner.Do(namespace.OpStat, path, "")
	if err != nil {
		return Attr{}, false, err
	}
	if !resp.OK() {
		if resp.Err == namespace.ErrNotFound.Error() {
			return Attr{}, false, nil
		}
		return Attr{}, false, resp.Error()
	}
	return Attr{Mode: uint32(resp.Stat.Perm), Size: resp.Stat.Size, Ctime: resp.Stat.Ctime.UnixNano()}, true, nil
}

// Stats exposes the wrapped client's RPC counters.
func (c *LambdaClient) Stats() rpc.ClientStats { return c.inner.Stats() }

// indexFn is the serverless function body: an in-memory attr cache over
// one LevelDB partition. tree-test workloads are create-then-read with no
// overwrites, so cached attrs never go stale; the cache therefore needs
// no cross-instance coherence (the full λFS coherence protocol would be
// layered exactly as in internal/core if overwrites were in scope).
type indexFn struct {
	inst    *faas.Instance
	db      *lsm.DB
	cpuCost time.Duration

	mu    sync.Mutex
	cache map[string]Attr
}

var _ faas.App = (*indexFn)(nil)
var _ rpc.Server = (*indexFn)(nil)

func newIndexFn(inst *faas.Instance, db *lsm.DB, cpuCost time.Duration) *indexFn {
	return &indexFn{inst: inst, db: db, cpuCost: cpuCost, cache: make(map[string]Attr)}
}

// Execute implements the rpc.Server (TCP) path. Cache hits cost half the
// CPU of a full LevelDB-path operation (no SSTable handling).
func (f *indexFn) Execute(req namespace.Request) *namespace.Response {
	switch req.Op {
	case namespace.OpCreate:
		f.inst.AcquireCPU(f.cpuCost)
		attr := Attr{Mode: 0o644}
		f.db.Put(req.Path, encodeAttr(attr))
		f.mu.Lock()
		f.cache[req.Path] = attr
		f.mu.Unlock()
		return &namespace.Response{}
	case namespace.OpStat:
		f.mu.Lock()
		attr, ok := f.cache[req.Path]
		f.mu.Unlock()
		hit := ok
		if hit {
			f.inst.AcquireCPU(f.cpuCost / 2)
		} else {
			f.inst.AcquireCPU(f.cpuCost)
		}
		if !ok {
			raw, found := f.db.Get(req.Path)
			if !found {
				return &namespace.Response{Err: namespace.ToWire(namespace.ErrNotFound)}
			}
			attr, ok = decodeAttr(raw)
			if !ok {
				return &namespace.Response{Err: namespace.ToWire(namespace.ErrInvalidState)}
			}
			f.mu.Lock()
			f.cache[req.Path] = attr
			f.mu.Unlock()
		}
		stat := namespace.StatInfo{Path: req.Path, Perm: namespace.Permission(attr.Mode), Size: attr.Size}
		return &namespace.Response{Stat: &stat, CacheHit: hit}
	}
	return &namespace.Response{Err: namespace.ToWire(namespace.ErrInvalidState)}
}

// HandleInvoke implements the HTTP path and connects back to the client's
// TCP server, exactly like a λFS NameNode.
func (f *indexFn) HandleInvoke(payload any) any {
	p, ok := payload.(rpc.Payload)
	if !ok {
		return nil
	}
	resp := f.Execute(p.Req)
	if p.ReplyTo != nil {
		p.ReplyTo.Offer(f.inst.DeploymentIndex(), rpc.NewConn(f.inst, f))
	}
	return resp
}

// Shutdown has nothing to tear down (cache dies with the instance).
func (f *indexFn) Shutdown(bool) {}
