// Package indexfs implements the portability study of §5.7: IndexFS, a
// scaled-out metadata middleware whose servers pack metadata into
// LevelDB SSTables (here internal/lsm), and λIndexFS, the λFS port that
// moves in-memory metadata handling into serverless functions and demotes
// LevelDB to a persistent store only (Figure 7).
//
// Namespace partitioning follows the paper's "alternative partitioning
// scheme" developed with the IndexFS authors: directories are hashed by
// parent-directory name across the LevelDB partitions, which is the same
// consistent hash λFS uses — so the λIndexFS port reuses λFS's client
// library (internal/rpc) and FaaS platform unchanged.
//
// The workload interface is IndexFS's tree-test: Mknod (create a file
// metadata row) and Getattr (read it back).
package indexfs

import (
	"encoding/binary"
	"math"
	"sync/atomic"
	"time"

	"lambdafs/internal/clock"
	"lambdafs/internal/lsm"
	"lambdafs/internal/namespace"
	"lambdafs/internal/partition"
)

// Attr is the per-file metadata row (a compact stand-in for IndexFS's
// packed inode attributes).
type Attr struct {
	Mode  uint32
	Size  int64
	Ctime int64
}

func encodeAttr(a Attr) []byte {
	buf := make([]byte, 20)
	binary.LittleEndian.PutUint32(buf[0:4], a.Mode)
	binary.LittleEndian.PutUint64(buf[4:12], uint64(a.Size))
	binary.LittleEndian.PutUint64(buf[12:20], uint64(a.Ctime))
	return buf
}

func decodeAttr(b []byte) (Attr, bool) {
	if len(b) != 20 {
		return Attr{}, false
	}
	return Attr{
		Mode:  binary.LittleEndian.Uint32(b[0:4]),
		Size:  int64(binary.LittleEndian.Uint64(b[4:12])),
		Ctime: int64(binary.LittleEndian.Uint64(b[12:20])),
	}, true
}

// Config shapes a vanilla IndexFS deployment: servers co-located with
// the client VMs (the paper uses 4), each owning one LevelDB partition.
type Config struct {
	Servers       int
	VCPUPerServer float64
	// OpCPUCost is server CPU per metadata operation.
	OpCPUCost time.Duration
	// NetOneWay is the client↔server latency.
	NetOneWay time.Duration
	// LSM tunes each server's LevelDB partition.
	LSM lsm.Config
}

// DefaultConfig matches the §5.7 testbed shape.
func DefaultConfig() Config {
	return Config{
		Servers: 4,
		// IndexFS servers are co-located with the client VMs (§5.7's
		// "co-location principle"), so each gets only part of a VM.
		VCPUPerServer: 4,
		OpCPUCost:     300 * time.Microsecond,
		NetOneWay:     300 * time.Microsecond,
		LSM:           lsm.DefaultConfig(),
	}
}

// server is one IndexFS metadata server.
type server struct {
	clk   clock.Clock
	db    *lsm.DB
	tasks chan task
}

type task struct {
	dur  time.Duration
	done chan struct{}
}

func newServer(clk clock.Clock, vcpu float64, lsmCfg lsm.Config) *server {
	workers := int(math.Ceil(vcpu))
	adjust := float64(workers) / vcpu
	s := &server{clk: clk, db: lsm.New(clk, lsmCfg), tasks: make(chan task, 4096)}
	for w := 0; w < workers; w++ {
		clock.Go(clk, func() {
			for {
				var t task
				var ok bool
				clock.Idle(clk, func() { t, ok = <-s.tasks })
				if !ok {
					return
				}
				clk.Sleep(time.Duration(float64(t.dur) * adjust))
				close(t.done)
			}
		})
	}
	return s
}

func (s *server) acquire(d time.Duration) {
	if d <= 0 {
		return
	}
	t := task{dur: d, done: make(chan struct{})}
	clock.Idle(s.clk, func() {
		s.tasks <- t
		<-t.done
	})
}

// Cluster is a running IndexFS deployment.
type Cluster struct {
	clk     clock.Clock
	cfg     Config
	ring    *partition.Ring
	servers []*server
	mknods  atomic.Uint64
	gets    atomic.Uint64
}

// New starts the cluster.
func New(clk clock.Clock, cfg Config) *Cluster {
	if cfg.Servers <= 0 {
		cfg.Servers = 1
	}
	c := &Cluster{clk: clk, cfg: cfg, ring: partition.NewRing(cfg.Servers, 0)}
	for i := 0; i < cfg.Servers; i++ {
		c.servers = append(c.servers, newServer(clk, cfg.VCPUPerServer, cfg.LSM))
	}
	return c
}

func (c *Cluster) serverFor(path string) *server {
	return c.servers[c.ring.DeploymentForPath(path)]
}

// Client issues tree-test operations against the cluster.
type Client struct {
	id string
	c  *Cluster
}

// NewClient creates a client.
func (c *Cluster) NewClient(id string) *Client {
	return &Client{id: id, c: c}
}

// Mknod creates the metadata row for path.
func (cl *Client) Mknod(path string) error {
	p, err := namespace.CleanPath(path)
	if err != nil {
		return err
	}
	c := cl.c
	c.clk.Sleep(c.cfg.NetOneWay)
	s := c.serverFor(p)
	s.acquire(c.cfg.OpCPUCost)
	s.db.Put(p, encodeAttr(Attr{Mode: 0o644, Ctime: c.clk.Now().UnixNano()}))
	c.mknods.Add(1)
	c.clk.Sleep(c.cfg.NetOneWay)
	return nil
}

// Getattr reads the metadata row for path.
func (cl *Client) Getattr(path string) (Attr, bool, error) {
	p, err := namespace.CleanPath(path)
	if err != nil {
		return Attr{}, false, err
	}
	c := cl.c
	c.clk.Sleep(c.cfg.NetOneWay)
	s := c.serverFor(p)
	s.acquire(c.cfg.OpCPUCost)
	raw, ok := s.db.Get(p)
	c.gets.Add(1)
	c.clk.Sleep(c.cfg.NetOneWay)
	if !ok {
		return Attr{}, false, nil
	}
	a, ok := decodeAttr(raw)
	return a, ok, nil
}

// Ops returns (mknods, getattrs) served.
func (c *Cluster) Ops() (uint64, uint64) {
	return c.mknods.Load(), c.gets.Load()
}

// LSMStats aggregates the partitions' LSM counters.
func (c *Cluster) LSMStats() lsm.Stats {
	var out lsm.Stats
	for _, s := range c.servers {
		st := s.db.Stats()
		out.Puts += st.Puts
		out.Gets += st.Gets
		out.Flushes += st.Flushes
		out.Compactions += st.Compactions
		out.Probes += st.Probes
	}
	return out
}
