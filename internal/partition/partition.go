// Package partition implements λFS's namespace partitioning: the file
// system namespace is divided among the n serverless NameNode deployments
// by consistently hashing the *parent directory path* of each file or
// directory (§3.1, §3.3). All children of one directory therefore map to
// the same deployment, which makes directory-local operations (ls, create,
// path resolution caching) deployment-local, while FaaS intra-deployment
// auto-scaling absorbs hot directories.
//
// # Concurrency and ownership
//
// A Ring is immutable after construction and therefore safe for
// unsynchronized concurrent reads from every client and engine; mapping
// is a pure function of (path, deployment count), so all parties agree
// on ownership without coordination.
package partition

import (
	"hash/fnv"
	"sort"

	"lambdafs/internal/namespace"
)

// Ring is a consistent-hash ring mapping parent-directory paths onto
// deployment indices [0, n). Virtual nodes smooth the distribution.
type Ring struct {
	n      int
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	dep  int
}

// DefaultVirtualNodes is the per-deployment virtual node count.
const DefaultVirtualNodes = 256

// NewRing builds a ring over n deployments with vnodes virtual nodes per
// deployment (DefaultVirtualNodes when vnodes <= 0).
func NewRing(n, vnodes int) *Ring {
	if n <= 0 {
		panic("partition: need at least one deployment")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{n: n, points: make([]ringPoint, 0, n*vnodes)}
	var key [16]byte
	for d := 0; d < n; d++ {
		for v := 0; v < vnodes; v++ {
			putUint64(key[0:8], uint64(d)+1)
			putUint64(key[8:16], uint64(v)+1)
			r.points = append(r.points, ringPoint{hash: hashBytes(key[:]), dep: d})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// mix64 is the splitmix64 finalizer; FNV alone clusters on short
// structured keys, which skews ring arc lengths badly.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func hashBytes(b []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(b) // hash.Hash.Write never fails
	return mix64(h.Sum64())
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s)) // hash.Hash.Write never fails
	return mix64(h.Sum64())
}

// Deployments returns the number of deployments on the ring.
func (r *Ring) Deployments() int { return r.n }

// locate maps a hash onto the owning deployment.
func (r *Ring) locate(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].dep
}

// DeploymentForParent maps a canonical *parent directory* path onto its
// owning deployment.
func (r *Ring) DeploymentForParent(parent string) int {
	return r.locate(hashString(parent))
}

// DeploymentForPath maps a file or directory path onto the deployment that
// caches its metadata: the hash of its parent directory. The root, having
// no parent, hashes by itself.
func (r *Ring) DeploymentForPath(path string) int {
	if path == "/" || path == "" {
		return r.locate(hashString("/"))
	}
	return r.DeploymentForParent(namespace.ParentPath(path))
}

// DeploymentsForSubtree returns the set of deployments that may cache any
// metadata under root (inclusive). Because children hash by parent, every
// directory in the subtree contributes its own deployment; callers that
// cannot enumerate the subtree use AllDeployments instead.
func (r *Ring) DeploymentsForSubtree(dirs []string) []int {
	seen := make(map[int]bool, r.n)
	for _, d := range dirs {
		seen[r.DeploymentForParent(d)] = true
		seen[r.DeploymentForPath(d)] = true
	}
	out := make([]int, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// AllDeployments returns [0, n).
func (r *Ring) AllDeployments() []int {
	out := make([]int, r.n)
	for i := range out {
		out[i] = i
	}
	return out
}
