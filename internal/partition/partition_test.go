package partition

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestDeterministic(t *testing.T) {
	a := NewRing(8, 0)
	b := NewRing(8, 0)
	for i := 0; i < 100; i++ {
		p := fmt.Sprintf("/dir%d/file", i)
		if a.DeploymentForPath(p) != b.DeploymentForPath(p) {
			t.Fatalf("ring not deterministic for %q", p)
		}
	}
}

func TestSiblingsColocate(t *testing.T) {
	r := NewRing(16, 0)
	for d := 0; d < 50; d++ {
		dir := fmt.Sprintf("/data/set%d", d)
		want := r.DeploymentForParent(dir)
		for f := 0; f < 20; f++ {
			p := fmt.Sprintf("%s/file%d", dir, f)
			if got := r.DeploymentForPath(p); got != want {
				t.Fatalf("sibling %q mapped to %d, dir owner is %d", p, got, want)
			}
		}
	}
}

func TestRootHashesBySelf(t *testing.T) {
	r := NewRing(4, 0)
	if got := r.DeploymentForPath("/"); got != r.DeploymentForParent("/") {
		t.Fatalf("root mapping inconsistent: %d", got)
	}
	// Top-level entries hash by "/" too.
	if r.DeploymentForPath("/a") != r.DeploymentForParent("/") {
		t.Fatal("top-level entry should hash by root parent")
	}
}

func TestInRange(t *testing.T) {
	f := func(n uint8, path string) bool {
		deployments := int(n%32) + 1
		r := NewRing(deployments, 4)
		d := r.DeploymentForPath("/" + path)
		return d >= 0 && d < deployments
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDistributionRoughlyUniform(t *testing.T) {
	const deployments = 10
	const dirs = 20000
	r := NewRing(deployments, 0)
	counts := make([]int, deployments)
	for i := 0; i < dirs; i++ {
		counts[r.DeploymentForParent(fmt.Sprintf("/bench/dir-%d", i))]++
	}
	want := float64(dirs) / deployments
	for d, c := range counts {
		if float64(c) < want*0.5 || float64(c) > want*1.5 {
			t.Fatalf("deployment %d owns %d of %d dirs (want ~%.0f): skewed", d, c, dirs, want)
		}
	}
}

func TestSubtreeDeployments(t *testing.T) {
	r := NewRing(8, 0)
	dirs := []string{"/a", "/a/b", "/a/b/c"}
	got := r.DeploymentsForSubtree(dirs)
	if len(got) == 0 {
		t.Fatal("no deployments for subtree")
	}
	seen := map[int]bool{}
	for _, d := range got {
		if d < 0 || d >= 8 {
			t.Fatalf("deployment %d out of range", d)
		}
		if seen[d] {
			t.Fatalf("duplicate deployment %d", d)
		}
		seen[d] = true
	}
	// Owners of each dir must be included.
	for _, dir := range dirs {
		if !seen[r.DeploymentForPath(dir)] {
			t.Fatalf("owner of %q missing from subtree set", dir)
		}
	}
}

func TestAllDeployments(t *testing.T) {
	r := NewRing(5, 0)
	all := r.AllDeployments()
	if len(all) != 5 {
		t.Fatalf("AllDeployments = %v", all)
	}
	for i, d := range all {
		if d != i {
			t.Fatalf("AllDeployments = %v", all)
		}
	}
	if r.Deployments() != 5 {
		t.Fatal("Deployments() wrong")
	}
}

func TestSingleDeployment(t *testing.T) {
	r := NewRing(1, 0)
	for i := 0; i < 20; i++ {
		if d := r.DeploymentForPath(fmt.Sprintf("/x/%d", i)); d != 0 {
			t.Fatalf("single-deployment ring returned %d", d)
		}
	}
}

func TestNewRingPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRing(0) should panic")
		}
	}()
	NewRing(0, 0)
}
