// Package bench implements the paper's evaluation (§5): one experiment
// per table and figure, each wiring the systems under test (λFS, HopsFS,
// HopsFS+Cache, InfiniCache, CephFS, IndexFS/λIndexFS) onto the
// discrete-event simulation clock with the paper's deployment shapes, and
// printing the same rows/series the paper reports.
//
// Absolute numbers come from this repository's simulated substrates, not
// the authors' AWS testbed; the *shapes* — who wins, by roughly what
// factor, where crossovers fall — are the reproduction target (see
// EXPERIMENTS.md).
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"lambdafs/internal/clock"
	"lambdafs/internal/coordinator"
	"lambdafs/internal/core"
	"lambdafs/internal/faas"
	"lambdafs/internal/hopsfs"
	"lambdafs/internal/metrics"
	"lambdafs/internal/ndb"
	"lambdafs/internal/rpc"
	"lambdafs/internal/telemetry"
	"lambdafs/internal/trace"
	"lambdafs/internal/workload"
)

// Options control experiment scale.
type Options struct {
	// Quick trims durations and per-client op counts so the whole suite
	// runs in minutes; Full uses the paper's counts.
	Quick bool
	// Tiny shrinks further so that every experiment fits inside Go's
	// default 10-minute test timeout when the whole set runs as
	// testing.B benchmarks (bench_test.go). Implies Quick.
	Tiny bool
	// Seed drives all workload randomness.
	Seed int64
	// Out receives the rendered tables (defaults to io.Discard when nil).
	Out io.Writer
	// TraceDir, when non-empty, receives raw trace/event JSONL dumps from
	// the experiments that run with tracing enabled.
	TraceDir string
	// MetricsDir, when non-empty, receives per-experiment telemetry
	// artifacts: scraped snapshot series as JSON plus a final
	// Prometheus-text registry dump, and flight-recorder JSONL dumps from
	// failing chaos episodes.
	MetricsDir string
	// ChaosSeed, when > 0, makes the chaos experiment replay that single
	// deterministic episode instead of its standard seed sweep (the seed a
	// failing run printed).
	ChaosSeed int64
	// SLODir, when non-empty, receives the slo experiment's artifacts:
	// the alert-coverage battery results as JSON, the live run's alert
	// transition log as JSONL, and the live telemetry plane.
	SLODir string
}

func (o Options) out() io.Writer {
	if o.Out == nil {
		return io.Discard
	}
	return o.Out
}

// Table is one rendered result artifact.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// WriteCSV writes the table as RFC-4180 CSV (header row first); the
// harness uses it to export figure data for external plotting.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the table to dir/<ID>.csv.
func (t *Table) SaveCSV(dir string) error {
	f, err := os.Create(filepath.Join(dir, t.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Experiment is a named, runnable reproduction unit.
type Experiment struct {
	Name  string
	Brief string
	Run   func(opts Options) []*Table
}

// All returns the experiment registry in presentation order.
func All() []Experiment {
	return []Experiment{
		{"tab2", "Table 2: Spotify workload operation mix self-check", RunTab2},
		{"fig8a", "Figure 8(a): Spotify workload, 25k ops/s base", func(o Options) []*Table { return RunFig8(o, 25000) }},
		{"fig8b", "Figure 8(b): Spotify workload, 50k ops/s base", func(o Options) []*Table { return RunFig8(o, 50000) }},
		{"fig9", "Figure 9 + 8(c): cumulative cost and performance-per-cost", RunFig9},
		{"fig10", "Figure 10: latency CDFs per operation type", RunFig10},
		{"fig11", "Figure 11: client-driven scaling", RunFig11},
		{"fig12", "Figure 12: resource scaling", RunFig12},
		{"fig13", "Figure 13: performance-per-cost vs clients", RunFig13},
		{"fig14", "Figure 14: auto-scaling ablation", RunFig14},
		{"tab3", "Table 3: subtree mv latency", RunTab3},
		{"fig15", "Figure 15: fault tolerance under the Spotify workload", RunFig15},
		{"fig16", "Figure 16: λIndexFS vs IndexFS (tree-test)", RunFig16},
		{"ablation-rpc", "Ablation: hybrid RPC and replacement probability", RunAblationRPC},
		{"ablation-batch", "Ablation: subtree batch size and offloading", RunAblationBatch},
		{"hotpath", "Hot-path parallelism: batched resolution, fan-out invalidation, partitioned subtree mv", RunHotpath},
		{"trace", "Observability: latency decomposition and structured event log", RunTrace},
		{"chaos", "Chaos: deterministic fault-injection episodes + full-stack fault storm", RunChaos},
		{"restart", "Durability: recovery time vs WAL length + crash_restart episode battery", RunRestart},
		{"slo", "SLOs: chaos alert-coverage battery + default rule pack on a live deployment", RunSLO},
		{"scale", "Scalability: 10³–10⁶-client throughput/p99 curve with multi-tenant admission (discrete-event)", RunScale},
	}
}

// Find returns the experiment with the given name.
func Find(name string) (Experiment, bool) {
	for _, e := range All() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// ---------------------------------------------------------------------------
// System builders. All experiments use the paper's deployment shapes; the
// DES clock makes full-scale capacities affordable.

// ndbConfig is the shared 4-data-node NDB deployment. Calibrated so the
// store is the read bottleneck for cache-less HopsFS and the write
// bottleneck for everyone (§5.3).
func ndbConfig() ndb.Config {
	return ndb.Config{
		DataNodes:       4,
		WorkersPerNode:  2,
		RTT:             300 * time.Microsecond,
		ReadService:     300 * time.Microsecond,
		WriteService:    250 * time.Microsecond,
		BatchRows:       64,
		LockWaitTimeout: 500 * time.Millisecond,
	}
}

// lambdaCluster bundles one λFS deployment for an experiment.
type lambdaCluster struct {
	clk      *clock.Sim
	db       *ndb.DB
	coord    *coordinator.ZK
	platform *faas.Platform
	sys      *core.System
	vms      []*rpc.VM
	lambda   *metrics.LambdaMeter
	prov     *metrics.ProvisionedMeter
	rpcCfg   rpc.Config
}

type lambdaParams struct {
	deployments    int
	nnVCPU         float64
	nnRAMGB        float64
	totalVCPU      float64
	concurrency    int
	maxInstances   int
	minInstances   int
	cacheBudget    int64
	clientVMs      int
	replaceProb    float64
	evictForSpace  bool
	coldStart      time.Duration
	gatewayLatency time.Duration
	seed           int64 // base seed for client RPC jitter (rpc.Config.Seed)
	tracer         *trace.Tracer
	metrics        *telemetry.Registry // nil → no telemetry plane
	// Optional config hooks, applied just before each substrate is built
	// (the chaos experiment wires fault-injection callbacks through these).
	ndbHook  func(*ndb.Config)
	faasHook func(*faas.Config)
	rpcHook  func(*rpc.Config)
}

func defaultLambdaParams() lambdaParams {
	return lambdaParams{
		deployments:    16,
		nnVCPU:         6.25,
		nnRAMGB:        30,
		totalVCPU:      512,
		concurrency:    1,
		clientVMs:      8,
		replaceProb:    0.005,
		coldStart:      900 * time.Millisecond,
		gatewayLatency: 4 * time.Millisecond,
	}
}

func newLambdaCluster(clk *clock.Sim, p lambdaParams) *lambdaCluster {
	return newLambdaClusterWith(clk, p, nil)
}

// newLambdaClusterWith builds λFS with a final hook over the system
// config (ablations tweak subtree batching and offloading).
func newLambdaClusterWith(clk *clock.Sim, p lambdaParams, mutate func(*core.SystemConfig)) *lambdaCluster {
	nCfg := ndbConfig()
	nCfg.Metrics = p.metrics
	if p.ndbHook != nil {
		p.ndbHook(&nCfg)
	}
	db := ndb.New(clk, nCfg)
	coCfg := coordinator.DefaultConfig()
	coCfg.HopLatency = 300 * time.Microsecond
	coCfg.Metrics = p.metrics
	coCfg.OnCrash = func(id string) { core.CleanupCrashedNameNode(db, id) }
	coord := coordinator.NewZK(clk, coCfg)

	lambda := metrics.NewLambdaMeter(clock.Epoch)
	prov := metrics.NewProvisionedMeter(clock.Epoch)
	// Cumulative cost under both billing models, sampled lazily at scrape
	// time — the same pair the public Cluster registers.
	p.metrics.GaugeFunc("lambdafs_cost_payperuse_usd", //vet:allow metricnames cost is a cross-cutting subsystem, mirrored from the public Cluster
		func() float64 { return lambda.TotalUSD() })
	p.metrics.GaugeFunc("lambdafs_cost_provisioned_usd", //vet:allow metricnames cost is a cross-cutting subsystem, mirrored from the public Cluster
		func() float64 { return prov.TotalUSD() })
	fCfg := faas.DefaultConfig()
	fCfg.TotalVCPU = p.totalVCPU
	fCfg.TotalRAMGB = 8192
	fCfg.ColdStart = p.coldStart
	fCfg.GatewayLatency = p.gatewayLatency
	fCfg.IdleReclaim = 30 * time.Second
	fCfg.ReclaimInterval = 5 * time.Second
	fCfg.Lambda = lambda
	fCfg.Provisioned = prov
	fCfg.Tracer = p.tracer
	fCfg.Metrics = p.metrics
	if p.faasHook != nil {
		p.faasHook(&fCfg)
	}
	platform := faas.New(clk, fCfg)

	eng := core.DefaultEngineConfig()
	eng.CacheBudget = p.cacheBudget
	eng.Metrics = p.metrics
	sysCfg := core.SystemConfig{
		Deployments:               p.deployments,
		NameNodeVCPU:              p.nnVCPU,
		NameNodeRAMGB:             p.nnRAMGB,
		ConcurrencyLevel:          p.concurrency,
		MaxInstancesPerDeployment: p.maxInstances,
		MinInstancesPerDeployment: p.minInstances,
		Engine:                    eng,
		OffloadLatency:            time.Millisecond,
	}
	if mutate != nil {
		mutate(&sysCfg)
	}
	sys := core.NewSystem(clk, db, coord, platform, sysCfg)

	rCfg := rpc.DefaultConfig()
	rCfg.HTTPReplaceProb = p.replaceProb
	rCfg.Seed = p.seed
	rCfg.Metrics = p.metrics
	if p.rpcHook != nil {
		p.rpcHook(&rCfg)
	}
	c := &lambdaCluster{
		clk: clk, db: db, coord: coord, platform: platform, sys: sys,
		lambda: lambda, prov: prov, rpcCfg: rCfg,
	}
	vms := p.clientVMs
	if vms <= 0 {
		vms = 1
	}
	for i := 0; i < vms; i++ {
		vm := rpc.NewVM(clk, rCfg)
		vm.SetTracer(p.tracer) // before clients: they capture it at creation
		c.vms = append(c.vms, vm)
	}
	return c
}

// clientFor spreads clients across the cluster's VMs.
func (c *lambdaCluster) clientFor(i int) workload.FS {
	vm := c.vms[i%len(c.vms)]
	return vm.NewClient(fmt.Sprintf("c%04d", i), c.sys.Ring(), c.sys)
}

func (c *lambdaCluster) close() { c.platform.Close() }

// hopsCluster bundles a HopsFS (or HopsFS+Cache) deployment.
type hopsCluster struct {
	db *ndb.DB
	cl *hopsfs.Cluster
}

func newHopsCluster(clk *clock.Sim, withCache bool, totalVCPU int) *hopsCluster {
	db := ndb.New(clk, ndbConfig())
	coCfg := coordinator.DefaultConfig()
	coCfg.HopLatency = 300 * time.Microsecond
	coCfg.OnCrash = func(id string) { core.CleanupCrashedNameNode(db, id) }
	coord := coordinator.NewZK(clk, coCfg)
	cfg := hopsfs.DefaultConfig()
	cfg.WithCache = withCache
	cfg.VCPUPerNameNode = 16
	cfg.NameNodes = totalVCPU / 16
	if cfg.NameNodes < 1 {
		cfg.NameNodes = 1
	}
	cfg.RPCOneWay = 300 * time.Microsecond
	return &hopsCluster{db: db, cl: hopsfs.New(clk, db, coord, cfg)}
}

func (h *hopsCluster) clientFor(i int) workload.FS {
	return h.cl.NewClient(fmt.Sprintf("c%04d", i))
}

func fmtOps(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/1e6)
	default:
		return fmt.Sprintf("%.0fµs", float64(d)/1e3)
	}
}

func fmtUSD(v float64) string { return fmt.Sprintf("$%.4f", v) }

func ratio(a, b float64) string {
	if b <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", a/b)
}
