package bench

import (
	"fmt"
	"time"

	"lambdafs/internal/cephfs"
	"lambdafs/internal/clock"
	"lambdafs/internal/coordinator"
	"lambdafs/internal/core"
	"lambdafs/internal/faas"
	"lambdafs/internal/infinicache"
	"lambdafs/internal/metrics"
	"lambdafs/internal/namespace"
	"lambdafs/internal/ndb"
	"lambdafs/internal/workload"
)

// microResult is one (system, op, size) measurement of §5.3.
type microResult struct {
	throughput float64
	meanLat    time.Duration
	costPerSec float64 // provisioned/serverful cost rate for Figure 13
	vcpuUsed   float64
}

// microSystem builds a system under test for the scaling experiments.
type microSystem struct {
	name string
	// build prepares the system on clk with the given vCPU budget and
	// preloaded namespace, returning the per-client FS factory, a cost
	// probe (called after the run; $/sec of the run), and a closer.
	build func(clk *clock.Sim, vcpus int, dirs, files []string) (func(int) workload.FS, func(elapsed time.Duration) float64, func())
}

func microTreeShape(opts Options) (dirs, filesPerDir int) {
	if opts.Tiny {
		return 8, 32
	}
	if opts.Quick {
		// A smaller tree keeps the re-reference rate (and therefore the
		// cache behaviour) comparable to the full-size run despite the
		// reduced op counts.
		return 16, 64
	}
	return 64, 512
}

func microSizes(opts Options) []int {
	if opts.Tiny {
		return []int{8, 64}
	}
	if opts.Quick {
		return []int{8, 64, 256}
	}
	return []int{8, 16, 32, 64, 128, 256, 512, 1024}
}

func microOpsPerClient(opts Options) int {
	if opts.Tiny {
		return 48
	}
	if opts.Quick {
		return 96
	}
	return 3072
}

func microOps() []namespace.OpType {
	return []namespace.OpType{namespace.OpRead, namespace.OpLs, namespace.OpStat,
		namespace.OpCreate, namespace.OpMkdirs}
}

// lambdaMicro builds λFS for the scaling experiments.
func lambdaMicro(maxInstances int, seed int64) microSystem {
	return microSystem{
		name: "λFS",
		build: func(clk *clock.Sim, vcpus int, dirs, files []string) (func(int) workload.FS, func(time.Duration) float64, func()) {
			p := defaultLambdaParams()
			p.seed = seed
			p.totalVCPU = float64(vcpus)
			p.maxInstances = maxInstances
			p.minInstances = 1
			if float64(p.deployments)*p.nnVCPU > p.totalVCPU {
				// Small budgets cannot host 16 deployments of 6.25 vCPU;
				// shrink the NameNodes, keeping the deployment count
				// (namespace partitioning is deployment-count-based).
				p.nnVCPU = p.totalVCPU / float64(p.deployments)
				if p.nnVCPU < 0.5 {
					p.nnVCPU = 0.5
				}
				p.minInstances = 0
			}
			c := newLambdaCluster(clk, p)
			workload.PreloadNDB(c.db, dirs, files)
			cost := func(elapsed time.Duration) float64 {
				// Figure 13 prices λFS under the simplified (provisioned)
				// model: the instantaneous rate of the fleet that served
				// the measured phase.
				return float64(c.platform.ActiveInstances()) * p.nnRAMGB * metrics.LambdaGBSecondUSD
			}
			return c.clientFor, cost, c.close
		},
	}
}

func hopsMicro(withCache bool) microSystem {
	name := "HopsFS"
	if withCache {
		name = "HopsFS+Cache"
	}
	return microSystem{
		name: name,
		build: func(clk *clock.Sim, vcpus int, dirs, files []string) (func(int) workload.FS, func(time.Duration) float64, func()) {
			h := newHopsCluster(clk, withCache, vcpus)
			workload.PreloadNDB(h.db, dirs, files)
			cost := func(elapsed time.Duration) float64 {
				return float64(h.cl.TotalVCPU()) * metrics.VMvCPUSecondUSD
			}
			return h.clientFor, cost, func() {}
		},
	}
}

func infiniMicro() microSystem {
	return microSystem{
		name: "InfiniCache",
		build: func(clk *clock.Sim, vcpus int, dirs, files []string) (func(int) workload.FS, func(time.Duration) float64, func()) {
			db := ndb.New(clk, ndbConfig())
			workload.PreloadNDB(db, dirs, files)
			coCfg := coordinator.DefaultConfig()
			coCfg.HopLatency = 300 * time.Microsecond
			coCfg.OnCrash = func(id string) { core.CleanupCrashedNameNode(db, id) }
			coord := coordinator.NewZK(clk, coCfg)
			fCfg := faas.DefaultConfig()
			fCfg.TotalVCPU = float64(vcpus)
			fCfg.GatewayLatency = 4 * time.Millisecond
			fCfg.ColdStart = 900 * time.Millisecond
			fCfg.IdleReclaim = 0 // static deployment
			platform := faas.New(clk, fCfg)
			icfg := infinicache.DefaultConfig()
			icfg.Deployments = 16
			icfg.InstancesPerDeployment = 1
			icfg.VCPU = float64(vcpus) / 16 * 0.9
			if icfg.VCPU <= 0 {
				icfg.VCPU = 0.5
			}
			sys := infinicache.New(clk, db, coord, platform, icfg)
			fsFor := func(i int) workload.FS { return sys.NewClient(fmt.Sprintf("c%04d", i)) }
			cost := func(time.Duration) float64 { return float64(vcpus) * metrics.VMvCPUSecondUSD }
			return fsFor, cost, platform.Close
		},
	}
}

func cephMicro() microSystem {
	return microSystem{
		name: "CephFS",
		build: func(clk *clock.Sim, vcpus int, dirs, files []string) (func(int) workload.FS, func(time.Duration) float64, func()) {
			cfg := cephfs.DefaultConfig()
			cfg.MDSServers = vcpus / 16
			if cfg.MDSServers < 1 {
				cfg.MDSServers = 1
			}
			sys := cephfs.New(clk, cfg)
			sys.Preload(dirs, files)
			fsFor := func(i int) workload.FS { return sys.NewClient(fmt.Sprintf("c%04d", i)) }
			cost := func(time.Duration) float64 { return float64(vcpus) * metrics.VMvCPUSecondUSD }
			return fsFor, cost, func() {}
		},
	}
}

// runMicro executes one closed-loop microbenchmark point.
func runMicro(opts Options, sys microSystem, op namespace.OpType, clients, vcpus, opsPerClient int) microResult {
	clk := clock.NewSim()
	defer clk.Close()
	d, f := microTreeShape(opts)
	dirs, files := workload.GenerateNamespace(d, f)
	// Construction pre-warms instances (cold-start sleeps): run it
	// registered on the DES clock.
	var fsFor func(int) workload.FS
	var costProbe func(time.Duration) float64
	var closer func()
	clock.Run(clk, func() { fsFor, costProbe, closer = sys.build(clk, vcpus, dirs, files) })
	defer func() { clock.Run(clk, closer) }()
	tree := workload.NewTree(dirs, files)
	// Warm-up pass: client FS handles are reused, so connections are
	// established and instances provisioned before measurement (the
	// artifact's benchmarks run repeated trials for the same reason).
	fss := make([]workload.FS, clients)
	for i := range fss {
		fss[i] = fsFor(i)
	}
	cached := func(i int) workload.FS { return fss[i] }
	warm := opsPerClient / 4
	if warm < 8 {
		warm = 8
	}
	var rec *workload.Recorder
	var elapsed time.Duration
	clock.Run(clk, func() {
		workload.RunClosedLoop(clk, tree, workload.SingleOpMix(op), clients, warm, opts.Seed+99, cached)
		start := clk.Now()
		rec = workload.RunClosedLoop(clk, tree, workload.SingleOpMix(op), clients, opsPerClient, opts.Seed, cached)
		elapsed = clk.Since(start)
	})
	res := microResult{meanLat: rec.Overall.Mean()}
	if elapsed > 0 {
		res.throughput = float64(rec.Completed.Load()) / elapsed.Seconds()
	}
	clock.Run(clk, func() { res.costPerSec = costProbe(elapsed) })
	return res
}

// RunFig11 reproduces the client-driven scaling comparison.
func RunFig11(opts Options) []*Table {
	systems := []microSystem{lambdaMicro(0, opts.Seed), hopsMicro(false), hopsMicro(true), infiniMicro(), cephMicro()}
	sizes := microSizes(opts)
	per := microOpsPerClient(opts)
	var tables []*Table
	for _, op := range microOps() {
		t := &Table{
			ID:      "fig11-" + op.String(),
			Title:   fmt.Sprintf("Client-driven scaling: %s ops/s (512 vCPU cap, %d ops/client)", op, per),
			Columns: append([]string{"system"}, sizeCols(sizes)...),
		}
		best := map[int]map[string]float64{}
		for _, sys := range systems {
			row := []string{sys.name}
			for _, n := range sizes {
				r := runMicro(opts, sys, op, n, 512, per)
				row = append(row, fmtOps(r.throughput))
				if best[n] == nil {
					best[n] = map[string]float64{}
				}
				best[n][sys.name] = r.throughput
			}
			t.Rows = append(t.Rows, row)
		}
		largest := sizes[len(sizes)-1]
		if b := best[largest]; b["HopsFS"] > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf("largest size: λFS/HopsFS = %s (paper: read 28.91x, stat 8.22x, ls 20.53x, create 1.49x, mkdir ~1x)",
				ratio(b["λFS"], b["HopsFS"])))
		}
		t.Fprint(opts.out())
		tables = append(tables, t)
	}
	return tables
}

func sizeCols(sizes []int) []string {
	out := make([]string, len(sizes))
	for i, s := range sizes {
		out[i] = fmt.Sprintf("%d clients", s)
	}
	return out
}

// RunFig12 reproduces the resource scaling comparison.
func RunFig12(opts Options) []*Table {
	systems := []microSystem{lambdaMicro(0, opts.Seed), hopsMicro(false), hopsMicro(true), infiniMicro(), cephMicro()}
	vcpus := []int{16, 128, 512}
	if opts.Tiny {
		vcpus = []int{16, 512}
	} else if !opts.Quick {
		vcpus = []int{16, 32, 64, 128, 256, 512}
	}
	clients := 256
	if opts.Quick {
		clients = 96
	}
	if opts.Tiny {
		clients = 48
	}
	per := microOpsPerClient(opts)
	var tables []*Table
	for _, op := range microOps() {
		t := &Table{
			ID:      "fig12-" + op.String(),
			Title:   fmt.Sprintf("Resource scaling: %s ops/s (%d clients, %d ops/client)", op, clients, per),
			Columns: append([]string{"system"}, vcpuCols(vcpus)...),
		}
		growth := map[string][2]float64{}
		for _, sys := range systems {
			row := []string{sys.name}
			var first, last float64
			for i, v := range vcpus {
				r := runMicro(opts, sys, op, clients, v, per)
				row = append(row, fmtOps(r.throughput))
				if i == 0 {
					first = r.throughput
				}
				last = r.throughput
			}
			growth[sys.name] = [2]float64{first, last}
			t.Rows = append(t.Rows, row)
		}
		if g := growth["λFS"]; g[0] > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf("λFS growth 16→512 vCPU: %s (paper: read 34.6x, stat 34.8x, ls 72.08x)", ratio(g[1], g[0])))
		}
		t.Fprint(opts.out())
		tables = append(tables, t)
	}
	return tables
}

func vcpuCols(vcpus []int) []string {
	out := make([]string, len(vcpus))
	for i, v := range vcpus {
		out[i] = fmt.Sprintf("%d vCPU", v)
	}
	return out
}

// RunFig13 reproduces performance-per-cost vs client count for the read
// operations (λFS under the simplified pricing model vs HopsFS+Cache's
// serverful bill).
func RunFig13(opts Options) []*Table {
	systems := []microSystem{lambdaMicro(0, opts.Seed), hopsMicro(true)}
	sizes := microSizes(opts)
	per := microOpsPerClient(opts)
	var tables []*Table
	for _, op := range []namespace.OpType{namespace.OpRead, namespace.OpLs, namespace.OpStat} {
		t := &Table{
			ID:      "fig13-" + op.String(),
			Title:   fmt.Sprintf("Performance-per-cost (ops/s/$): %s", op),
			Columns: append([]string{"system"}, sizeCols(sizes)...),
		}
		for _, sys := range systems {
			row := []string{sys.name}
			for _, n := range sizes {
				r := runMicro(opts, sys, op, n, 512, per)
				row = append(row, fmtOps(metrics.PerfPerCost(r.throughput, r.costPerSec)))
			}
			t.Rows = append(t.Rows, row)
		}
		t.Notes = append(t.Notes, "paper: λFS higher for read and ls at every size; stat comparable-or-better; λFS dips at the final sizes as it saturates its 512 vCPU")
		t.Fprint(opts.out())
		tables = append(tables, t)
	}
	return tables
}

// RunFig14 reproduces the auto-scaling ablation: full AS vs limited
// (≤3 instances per deployment) vs disabled (1 instance).
func RunFig14(opts Options) []*Table {
	modes := []struct {
		label string
		max   int
	}{
		{"AS", 0},
		{"Limited AS", 3},
		{"No AS", 1},
	}
	clients := 1024
	per := microOpsPerClient(opts)
	if opts.Quick {
		// The ablation needs enough load that a single instance per
		// deployment saturates; smaller quick sizes would show no
		// auto-scaling benefit for reads.
		clients = 512
	}
	if opts.Tiny {
		clients = 192
	}
	t := &Table{
		ID:      "fig14",
		Title:   fmt.Sprintf("Auto-scaling ablation on λFS (%d clients)", clients),
		Columns: []string{"op", "AS", "Limited AS", "No AS", "AS/No-AS"},
	}
	for _, op := range microOps() {
		row := []string{op.String()}
		var full, none float64
		for _, m := range modes {
			r := runMicro(opts, lambdaMicro(m.max, opts.Seed), op, clients, 512, per)
			row = append(row, fmtOps(r.throughput))
			if m.max == 0 {
				full = r.throughput
			}
			if m.max == 1 {
				none = r.throughput
			}
		}
		row = append(row, ratio(full, none))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "paper: read 3.53-3.80x, stat 3.53-3.80x, ls 14.37x over disabled AS; writes mostly store-bound")
	t.Fprint(opts.out())
	return []*Table{t}
}
