package bench

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBaselineFile(t *testing.T, b *HotpathBaseline) string {
	t.Helper()
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		t.Fatalf("marshal baseline: %v", err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatalf("write baseline: %v", err)
	}
	return path
}

// cloneBaseline deep-copies via the JSON round trip the gate itself uses.
func cloneBaseline(t *testing.T, b *HotpathBaseline) *HotpathBaseline {
	t.Helper()
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var out HotpathBaseline
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	return &out
}

// TestHotpathBaselineGate measures a tiny baseline once and then drives
// CheckHotpathBaseline three ways: an honest baseline must pass, a
// deliberately-deflated allocs_per_op fixture must fail mentioning
// allocs, and a stale schema must be rejected outright.
func TestHotpathBaselineGate(t *testing.T) {
	if testing.Short() {
		t.Skip("re-measures the hotpath experiment")
	}
	opts := Options{Tiny: true, Seed: 1, Out: io.Discard}
	cur := HotpathMeasure(opts)

	ds := cur.Scenarios["deep_stat"]
	if ds.Batched.AllocsPerOp <= 2*hotpathAllocsSlack {
		t.Fatalf("deep_stat batched allocs/op = %.0f, too small for the deflation fixture to trip the gate",
			ds.Batched.AllocsPerOp)
	}
	if ds.Batched.LockWaitUsPerOp < 0 {
		t.Fatalf("negative lock-wait/op %.1f", ds.Batched.LockWaitUsPerOp)
	}

	t.Run("honest baseline passes", func(t *testing.T) {
		path := writeBaselineFile(t, cur)
		if err := CheckHotpathBaseline(path, Options{Out: io.Discard}); err != nil {
			t.Fatalf("honest baseline failed the gate: %v", err)
		}
	})

	t.Run("deflated allocs fixture fails", func(t *testing.T) {
		regressed := cloneBaseline(t, cur)
		// A committed baseline claiming near-zero allocations makes the
		// current (honest) measurement look like an allocation regression.
		regressed.Scenarios["deep_stat"].Batched.AllocsPerOp = 0
		path := writeBaselineFile(t, regressed)
		err := CheckHotpathBaseline(path, Options{Out: io.Discard})
		if err == nil {
			t.Fatal("deflated allocs baseline passed the gate")
		}
		if !strings.Contains(err.Error(), "allocs/op") {
			t.Fatalf("gate failure does not mention allocs/op: %v", err)
		}
	})

	t.Run("stale schema rejected", func(t *testing.T) {
		stale := cloneBaseline(t, cur)
		stale.Schema = "lambdafs-hotpath-baseline/v1"
		path := writeBaselineFile(t, stale)
		err := CheckHotpathBaseline(path, Options{Out: io.Discard})
		if err == nil || !strings.Contains(err.Error(), "schema") {
			t.Fatalf("v1 schema not rejected: %v", err)
		}
	})
}
