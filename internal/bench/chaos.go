package bench

import (
	"fmt"
	"math/rand"
	"time"

	"lambdafs/internal/chaos"
	"lambdafs/internal/clock"
	"lambdafs/internal/faas"
	"lambdafs/internal/namespace"
	"lambdafs/internal/ndb"
	"lambdafs/internal/rpc"
	"lambdafs/internal/telemetry"
	"lambdafs/internal/trace"
	"lambdafs/internal/workload"
)

// RunChaos runs the fault-injection experiment in two phases.
//
// Phase A replays deterministic chaos episodes (the same harness as
// TestChaosRandomized): a multi-engine λFS cluster under a seeded op
// stream with faults armed at the ndb and coordinator boundaries, every
// FS invariant checked after every step. Each row reports one episode's
// fault mix, violation count, and digest; re-running with the same seed
// must reproduce the digest byte-for-byte. With Options.ChaosSeed > 0
// only that episode runs (failure replay: the seed a failing test or
// bench printed).
//
// Phase B runs a full-stack fault storm: the standard λFS deployment
// (faas platform, hybrid RPC fabric, NDB) under the Spotify-style mixed
// workload while an injector kills instances mid-invocation, denies cold
// starts, drops and delays TCP calls, and stalls NDB shards. Ops are
// allowed to fail — the point is that the system keeps serving and the
// store's structural invariants hold at quiescence.
func RunChaos(opts Options) []*Table {
	tables := []*Table{runChaosEpisodes(opts)}
	if opts.ChaosSeed <= 0 {
		tables = append(tables, runChaosStorm(opts))
	}
	for _, t := range tables {
		t.Fprint(opts.out())
	}
	return tables
}

// runChaosEpisodes is phase A: model-checked deterministic episodes.
func runChaosEpisodes(opts Options) *Table {
	episodes := 12
	if opts.Tiny {
		episodes = 4
	} else if opts.Quick {
		episodes = 8
	}
	seeds := make([]int64, 0, episodes)
	if opts.ChaosSeed > 0 {
		seeds = append(seeds, opts.ChaosSeed)
	} else {
		for i := 0; i < episodes; i++ {
			seeds = append(seeds, opts.Seed+int64(i))
		}
	}

	t := &Table{
		ID:      "chaos-episodes",
		Title:   "Deterministic chaos episodes (model-checked invariants)",
		Columns: []string{"seed", "steps", "inodes", "faults_fired", "fault_mix", "violations", "digest"},
		Notes: []string{
			"replay any row with -chaosseed <seed> (bench binary) or go test ./internal/chaos/ -run TestChaosRandomized -chaosseed <seed>",
		},
	}
	for _, seed := range seeds {
		cfg := chaos.DefaultEpisode(seed)
		cfg.Tracer = trace.New(clock.NewScaled(0), trace.Config{})
		cfg.Metrics = telemetry.NewRegistry()
		// The flight recorder rides along on every episode: the tracer's
		// event sink feeds its ring, and on an invariant violation the
		// freshest window is dumped for post-mortem replay.
		fr := telemetry.NewFlightRecorder(0, 0)
		cfg.Tracer.SetEventSink(fr.RecordEvent)
		res := chaos.RunEpisode(cfg)
		if len(res.Violations) > 0 && opts.MetricsDir != "" {
			if path, err := dumpFlight(opts.MetricsDir,
				fmt.Sprintf("chaos-flight-%d.jsonl", seed), fr, cfg.Metrics); err == nil {
				t.Notes = append(t.Notes, fmt.Sprintf("seed %d flight recorder: %s", seed, path))
			} else {
				t.Notes = append(t.Notes, fmt.Sprintf("seed %d flight recorder dump failed: %v", seed, err))
			}
		}
		var fired uint64
		mix := ""
		for _, kind := range []chaos.FaultKind{
			chaos.FaultTxAbort, chaos.FaultShardStall, chaos.FaultShardCrash,
			chaos.FaultLeaseExpiry, chaos.FaultLeaderFlap,
		} {
			n := res.FaultsFired[kind]
			fired += n
			if n > 0 {
				if mix != "" {
					mix += " "
				}
				mix += fmt.Sprintf("%s:%d", kind, n)
			}
		}
		if mix == "" {
			mix = "-"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", seed),
			fmt.Sprintf("%d", len(res.Steps)),
			fmt.Sprintf("%d", res.FinalINodes),
			fmt.Sprintf("%d", fired),
			mix,
			fmt.Sprintf("%d", len(res.Violations)),
			res.Digest[:16],
		})
		for _, v := range res.Violations {
			t.Notes = append(t.Notes, fmt.Sprintf("seed %d VIOLATION: %s", seed, v))
		}
	}
	return t
}

// runChaosStorm is phase B: the full λFS stack under a seeded fault storm.
func runChaosStorm(opts Options) *Table {
	clk := clock.NewSim()
	defer clk.Close()

	inj := chaos.NewInjector()
	p := defaultLambdaParams()
	p.seed = opts.Seed
	p.deployments = 4
	p.clientVMs = 2
	reg := telemetry.NewRegistry()
	p.metrics = reg
	fr := telemetry.NewFlightRecorder(0, 0)
	if opts.MetricsDir != "" {
		// With artifact output requested, trace the storm so a violation's
		// flight dump carries events alongside registry snapshots.
		p.tracer = trace.New(clk, trace.Config{})
		p.tracer.SetEventSink(fr.RecordEvent)
	}
	p.ndbHook = func(cfg *ndb.Config) {
		cfg.OnCommit = inj.NDBOnCommit
		cfg.OnShardService = inj.NDBOnShardService
	}
	p.faasHook = func(cfg *faas.Config) {
		cfg.OnInvoke = inj.FaasOnInvoke
		cfg.OnProvision = inj.FaasOnProvision
	}
	p.rpcHook = func(cfg *rpc.Config) {
		cfg.OnTCPFault = inj.RPCOnTCP
	}

	d, f := microTreeShape(opts)
	dirs, files := workload.GenerateNamespace(d, f)
	var c *lambdaCluster
	clock.Run(clk, func() {
		c = newLambdaCluster(clk, p)
		workload.PreloadNDB(c.db, dirs, files)
	})
	defer func() { clock.Run(clk, c.close) }()

	scraper := telemetry.NewScraper(clk, reg, time.Second)
	scraper.OnSnapshot(fr.RecordSnapshot)
	scraper.Start()

	clients, per := 32, 128
	if opts.Tiny {
		clients, per = 8, 48
	} else if opts.Quick {
		clients, per = 16, 64
	}
	mix := workload.Mix{
		{Op: namespace.OpCreate, Weight: 10},
		{Op: namespace.OpMv, Weight: 4},
		{Op: namespace.OpDelete, Weight: 2},
		{Op: namespace.OpRead, Weight: 38},
		{Op: namespace.OpStat, Weight: 36},
		{Op: namespace.OpLs, Weight: 10},
	}
	tree := workload.NewTree(dirs, files)
	fss := make([]workload.FS, clients)
	for i := range fss {
		fss[i] = c.clientFor(i)
	}
	cached := func(i int) workload.FS { return fss[i] }

	// Warm phase: connections and instances up, no faults armed.
	var warm *workload.Recorder
	clock.Run(clk, func() {
		warm = workload.RunClosedLoop(clk, tree, mix, clients, per, opts.Seed, cached)
	})

	// Storm phase: between workload waves, arm a seeded batch of faults
	// across every injection layer, plus direct instance kills.
	rng := rand.New(rand.NewSource(opts.Seed + 7))
	waves := 4
	if opts.Tiny {
		waves = 2
	}
	var storm *workload.Recorder
	clock.Run(clk, func() {
		storm = workload.NewRecorder(clk.Now())
	})
	for w := 0; w < waves; w++ {
		clock.Run(clk, func() {
			inj.ArmKillInvocation(1 + rng.Intn(2))
			inj.ArmProvisionFailure(rng.Intn(2))
			inj.ArmRPCDrop(2 + rng.Intn(3))
			inj.ArmRPCDelay(time.Duration(1+rng.Intn(4))*time.Millisecond, 2)
			inj.ArmShardStall(rng.Intn(4), 5*time.Millisecond, 3)
			c.platform.KillOneInstance(rng.Intn(p.deployments))
			r := workload.RunClosedLoop(clk, tree, mix, clients, per/2, opts.Seed+int64(w)+11, cached)
			storm.Completed.Add(r.Completed.Load())
			storm.SemanticErrs.Add(r.SemanticErrs.Load())
			storm.TransportErrs.Add(r.TransportErrs.Load())
		})
	}

	// Drain phase: disarm everything and let the system settle before the
	// structural audit (invariants are checked at quiescence).
	inj.Reset()
	var drain *workload.Recorder
	clock.Run(clk, func() {
		drain = workload.RunClosedLoop(clk, tree, mix, clients, 16, opts.Seed+101, cached)
		clk.Sleep(2 * time.Second)
	})

	var violations []string
	clock.Run(clk, func() { violations = chaos.CheckStore(c.db) })
	fired := inj.Fired()
	stats := c.platform.Stats()
	scraper.ScrapeNow()
	scraper.Stop()

	t := &Table{
		ID:      "chaos-storm",
		Title:   "Full-stack fault storm (faas + RPC + NDB injection)",
		Columns: []string{"metric", "value"},
	}
	row := func(k string, v any) { t.Rows = append(t.Rows, []string{k, fmt.Sprint(v)}) }
	row("warm_ops", warm.Completed.Load())
	row("storm_ops", storm.Completed.Load())
	row("storm_semantic_errs", storm.SemanticErrs.Load())
	row("storm_transport_errs", storm.TransportErrs.Load())
	row("drain_ops", drain.Completed.Load())
	row("instance_kills", stats.Kills)
	row("cold_starts", stats.ColdStarts)
	row("rejections", stats.Rejections)
	for _, kind := range []chaos.FaultKind{
		chaos.FaultKillInstance, chaos.FaultPoolExhausted,
		chaos.FaultRPCDrop, chaos.FaultRPCDelay,
		chaos.FaultShardStall, chaos.FaultShardCrash,
	} {
		row("fired_"+string(kind), fired[kind])
	}
	row("store_violations", len(violations))
	for _, v := range violations {
		t.Notes = append(t.Notes, "VIOLATION: "+v)
	}
	if len(violations) == 0 {
		t.Notes = append(t.Notes, "store structural invariants clean at quiescence")
	}
	if opts.MetricsDir != "" {
		if err := writeTelemetryArtifacts(opts.MetricsDir, "chaos-storm", reg, scraper); err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("metrics artifacts failed: %v", err))
		}
		if len(violations) > 0 {
			if path, err := dumpFlight(opts.MetricsDir, "chaos-storm-flight.jsonl", fr, reg); err == nil {
				t.Notes = append(t.Notes, "flight recorder: "+path)
			}
		}
	}
	return t
}
