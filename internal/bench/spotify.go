package bench

import (
	"fmt"
	"time"

	"lambdafs/internal/clock"
	"lambdafs/internal/metrics"
	"lambdafs/internal/namespace"
	"lambdafs/internal/telemetry"
	"lambdafs/internal/workload"
)

// spotifyParams derive the §5.2 workload shape from Options.
type spotifyParams struct {
	base     float64
	duration time.Duration
	interval time.Duration
	targets  []float64
	clients  int
	dirs     int
	files    int
}

func spotifyShape(opts Options, base float64) spotifyParams {
	p := spotifyParams{
		base:     base,
		duration: 300 * time.Second,
		interval: 15 * time.Second,
		clients:  1024,
		dirs:     256,
		files:    200,
	}
	if opts.Tiny {
		p.base = base * 0.15
		p.duration = 12 * time.Second
		p.interval = 3 * time.Second
		p.clients = 64
		p.dirs = 64
		p.files = 50
		p.targets = []float64{p.base, p.base, 7 * p.base, p.base}
	} else if opts.Quick {
		// Quick mode scales the workload down ~2.5x in rate and ~8x in
		// duration, and makes the 7x burst deterministic (a short run
		// may never draw one from the Pareto distribution). The
		// shape-defining relationships are preserved: the base rate
		// stays below the store's read capacity while the burst exceeds
		// it, so λFS still absorbs a spike that HopsFS cannot.
		p.base = base * 0.3
		p.duration = 40 * time.Second
		p.interval = 10 * time.Second
		p.clients = 128
		p.dirs = 128
		p.files = 100
		p.targets = []float64{p.base, p.base, 7 * p.base, p.base}
	} else {
		p.targets = workload.NewParetoLoad(p.base, opts.Seed).Series(p.duration)
	}
	return p
}

// spotifyRun is one system's execution of the Spotify workload.
type spotifyRun struct {
	label     string
	rec       *workload.Recorder
	nnSeries  []float64 // per-second active NameNode counts (λFS variants only)
	costUSD   float64   // primary cost model
	costCurve []float64 // cumulative per second
	ppcCurve  []float64 // performance per cost, per second
	vcpuUsed  float64
}

// runSpotifyLambda executes the workload on λFS. cacheBudget < 0 means
// the paper's default (unlimited); faultEvery > 0 kills one NameNode per
// interval round-robin (§5.6).
func runSpotifyLambda(opts Options, sp spotifyParams, label string, cacheBudget int64,
	totalVCPU float64, nnRAMGB float64, faultEvery time.Duration) *spotifyRun {
	clk := clock.NewSim()
	defer clk.Close()
	p := defaultLambdaParams()
	p.seed = opts.Seed
	p.nnVCPU = 5
	p.nnRAMGB = nnRAMGB
	p.totalVCPU = totalVCPU
	p.minInstances = 1
	if cacheBudget >= 0 {
		p.cacheBudget = cacheBudget
	}
	reg := telemetry.NewRegistry()
	p.metrics = reg
	var c *lambdaCluster
	dirs, files := workload.GenerateNamespace(sp.dirs, sp.files)
	clock.Run(clk, func() {
		c = newLambdaCluster(clk, p)
		workload.PreloadNDB(c.db, dirs, files)
	})
	defer func() { clock.Run(clk, c.close) }()
	tree := workload.NewTree(dirs, files)

	// The scraper snapshots every registry instrument once per virtual
	// second; the active-instance series feeds Figure 8's secondary axis
	// (the old ad-hoc instance gauge, now read out of the telemetry plane).
	gauge := metrics.NewGauge(clock.Epoch, time.Second)
	scraper := telemetry.NewScraper(clk, reg, time.Second)
	scraper.OnSnapshot(func(s telemetry.Snapshot) {
		gauge.Sample(s.Time, s.Values["lambdafs_faas_active_instances"])
	})
	scraper.Start()

	stopFaults := make(chan struct{})
	if faultEvery > 0 {
		fi := &workload.FaultInjector{Platform: c.platform, Interval: faultEvery, Deployments: p.deployments}
		clock.Go(clk, func() { fi.Run(clk, stopFaults) })
	}

	var rec *workload.Recorder
	clock.Run(clk, func() {
		rec = workload.RunRateDriven(clk, tree, workload.RateConfig{
			Clients:  sp.clients,
			Duration: sp.duration,
			Targets:  sp.targets,
			Interval: sp.interval,
			Mix:      workload.SpotifyMix(),
			Seed:     opts.Seed,
		}, c.clientFor)
	})
	close(stopFaults)
	peakVCPU := c.platform.Stats().PeakVCPUUsed
	var runEnd time.Time
	clock.Run(clk, func() { runEnd = clk.Now() })
	scraper.ScrapeNow() // capture the end-of-run state before stopping
	scraper.Stop()
	clock.Run(clk, c.close) // flush provisioned billing

	run := &spotifyRun{
		label: label,
		rec:   rec,
		// ValuesUntil pads the series to the end of the run so a pool
		// that went quiet early still renders across the full timeline.
		nnSeries:  gauge.ValuesUntil(runEnd),
		costUSD:   c.lambda.TotalUSD(),
		costCurve: c.lambda.CumulativeUSD(),
		ppcCurve:  metrics.PerfPerCostSeries(rec.Throughput.Rate(), c.lambda.PerSecondUSD()),
		vcpuUsed:  peakVCPU,
	}
	if opts.MetricsDir != "" {
		if err := writeTelemetryArtifacts(opts.MetricsDir, "spotify-"+sanitizeName(label), reg, scraper); err != nil {
			fmt.Fprintf(opts.out(), "metrics: %v\n", err)
		}
	}
	return run
}

// simplifiedLambdaCost re-prices a λFS run under the provisioned-time
// model (Figure 9's "λFS (Simplified)").
func runSpotifyLambdaSimplifiedCost(opts Options, sp spotifyParams) *spotifyRun {
	clk := clock.NewSim()
	defer clk.Close()
	p := defaultLambdaParams()
	p.seed = opts.Seed
	p.nnVCPU = 5
	p.nnRAMGB = 6
	p.minInstances = 1
	var c *lambdaCluster
	dirs, files := workload.GenerateNamespace(sp.dirs, sp.files)
	clock.Run(clk, func() {
		c = newLambdaCluster(clk, p)
		workload.PreloadNDB(c.db, dirs, files)
	})
	tree := workload.NewTree(dirs, files)
	var rec *workload.Recorder
	clock.Run(clk, func() {
		rec = workload.RunRateDriven(clk, tree, workload.RateConfig{
			Clients: sp.clients, Duration: sp.duration, Targets: sp.targets,
			Interval: sp.interval, Mix: workload.SpotifyMix(), Seed: opts.Seed,
		}, c.clientFor)
	})
	clock.Run(clk, c.close) // flush provisioned billing at termination
	return &spotifyRun{
		label:     "λFS (Simplified)",
		rec:       rec,
		costUSD:   c.prov.TotalUSD(),
		costCurve: c.prov.CumulativeUSD(),
	}
}

// runSpotifyHops executes the workload on HopsFS or HopsFS+Cache with a
// serverful cluster of totalVCPU.
func runSpotifyHops(opts Options, sp spotifyParams, label string, withCache bool, totalVCPU int) *spotifyRun {
	clk := clock.NewSim()
	defer clk.Close()
	var h *hopsCluster
	dirs, files := workload.GenerateNamespace(sp.dirs, sp.files)
	clock.Run(clk, func() {
		h = newHopsCluster(clk, withCache, totalVCPU)
		workload.PreloadNDB(h.db, dirs, files)
	})
	tree := workload.NewTree(dirs, files)
	var rec *workload.Recorder
	clock.Run(clk, func() {
		rec = workload.RunRateDriven(clk, tree, workload.RateConfig{
			Clients: sp.clients, Duration: sp.duration, Targets: sp.targets,
			Interval: sp.interval, Mix: workload.SpotifyMix(), Seed: opts.Seed,
		}, h.clientFor)
	})
	seconds := int(sp.duration / time.Second)
	curve := make([]float64, seconds)
	per := float64(totalVCPU) * metrics.VMvCPUSecondUSD
	cum := 0.0
	for i := range curve {
		cum += per
		curve[i] = cum
	}
	return &spotifyRun{
		label:     label,
		rec:       rec,
		costUSD:   metrics.VMCost(totalVCPU, sp.duration),
		costCurve: curve,
		ppcCurve:  metrics.PerfPerCostSeries(rec.Throughput.Rate(), metrics.VMCostSeries(totalVCPU, seconds)),
		vcpuUsed:  float64(totalVCPU),
	}
}

// spotifySystems runs the standard Figure 8 comparison set.
func spotifySystems(opts Options, sp spotifyParams) []*spotifyRun {
	// Per §5.2.1: λFS NameNodes get 5 vCPU / 6 GB; for the 25k workload
	// λFS's platform is allocated half of HopsFS's 512 vCPU; CN
	// HopsFS+Cache is cost-normalized at 72 / 144 vCPU.
	lambdaVCPU := 256.0
	cnVCPU := 72
	if sp.base >= 50000 {
		lambdaVCPU = 512.0
		cnVCPU = 144
	}
	// Reduced-cache λFS: budget below half the per-deployment share of
	// the working set (§5.2.3).
	wssBytes := int64(sp.dirs*sp.files) * 250
	reducedBudget := wssBytes / int64(defaultLambdaParams().deployments) / 3

	return []*spotifyRun{
		runSpotifyLambda(opts, sp, "λFS", -1, lambdaVCPU, 6, 0),
		runSpotifyHops(opts, sp, "HopsFS", false, 512),
		runSpotifyHops(opts, sp, "HopsFS+Cache", true, 512),
		runSpotifyLambda(opts, sp, "λFS ReducedCache", reducedBudget, lambdaVCPU, 6, 0),
		runSpotifyHops(opts, sp, fmt.Sprintf("CN HopsFS+Cache (%dvCPU)", cnVCPU), true, cnVCPU),
	}
}

// RunFig8 reproduces Figure 8(a) or 8(b).
func RunFig8(opts Options, base float64) []*Table {
	sp := spotifyShape(opts, base)
	runs := spotifySystems(opts, sp)
	t := &Table{
		ID:    fmt.Sprintf("fig8-%dk", int(base/1000)),
		Title: fmt.Sprintf("Spotify workload, base %s ops/s, %v, %d clients", fmtOps(base), sp.duration, sp.clients),
		Columns: []string{"system", "avg ops/s", "peak ops/s", "avg lat", "p99 lat",
			"completed", "NNs(min-max)", "cost"},
	}
	for _, r := range runs {
		nn := "-"
		if r.nnSeries != nil {
			vals := r.nnSeries
			min, max := 1e18, 0.0
			for _, v := range vals {
				if v > 0 && v < min {
					min = v
				}
				if v > max {
					max = v
				}
			}
			if max > 0 {
				nn = fmt.Sprintf("%.0f-%.0f", min, max)
			}
		}
		t.Rows = append(t.Rows, []string{
			r.label,
			fmtOps(r.rec.Throughput.MeanRate()),
			fmtOps(r.rec.Throughput.PeakRate()),
			fmtDur(r.rec.Overall.Mean()),
			fmtDur(r.rec.Overall.Quantile(0.99)),
			fmt.Sprintf("%d", r.rec.Completed.Load()),
			nn,
			fmtUSD(r.costUSD),
		})
	}
	lam, hops := runs[0], runs[1]
	t.Notes = append(t.Notes,
		fmt.Sprintf("λFS vs HopsFS: throughput %s, latency %s lower, peak %s",
			ratio(lam.rec.Throughput.MeanRate(), hops.rec.Throughput.MeanRate()),
			ratio(float64(hops.rec.Overall.Mean()), float64(lam.rec.Overall.Mean())),
			ratio(lam.rec.Throughput.PeakRate(), hops.rec.Throughput.PeakRate())),
		"paper (25k): λFS 45.7k avg/1.02ms; HopsFS 38.1k/10.58ms; peak 4.3x; cost 7.14x lower")

	// The figure itself is a timeline: per-second throughput for each
	// system plus λFS's active NameNode count on the secondary axis.
	series := throughputTimeline(t.ID, runs)
	series.Fprint(opts.out())
	t.Fprint(opts.out())
	return []*Table{t, series}
}

// throughputTimeline renders the Figure 8 curves as a table sampled every
// few seconds: one column per system plus the λFS NameNode gauge.
func throughputTimeline(id string, runs []*spotifyRun) *Table {
	series := &Table{
		ID:      id + "-timeline",
		Title:   "throughput over time (ops/s per second bucket; λFS NNs on the right)",
		Columns: []string{"t"},
	}
	maxLen := 0
	rates := make([][]float64, len(runs))
	for i, r := range runs {
		rates[i] = r.rec.Throughput.Rate()
		if len(rates[i]) > maxLen {
			maxLen = len(rates[i])
		}
		series.Columns = append(series.Columns, r.label)
	}
	series.Columns = append(series.Columns, "λFS NNs")
	gauge := runs[0].nnSeries
	step := maxLen / 20
	if step < 1 {
		step = 1
	}
	for sec := 0; sec < maxLen; sec += step {
		row := []string{fmt.Sprintf("%ds", sec)}
		for i := range runs {
			v := 0.0
			if sec < len(rates[i]) {
				v = rates[i][sec]
			}
			row = append(row, fmtOps(v))
		}
		nn := "-"
		if sec < len(gauge) {
			nn = fmt.Sprintf("%.0f", gauge[sec])
		}
		row = append(row, nn)
		series.Rows = append(series.Rows, row)
	}
	return series
}

// RunFig9 reproduces Figure 9 (cumulative cost) and Figure 8(c)
// (performance-per-cost) for the 25k workload.
func RunFig9(opts Options) []*Table {
	sp := spotifyShape(opts, 25000)
	lam := runSpotifyLambda(opts, sp, "λFS", -1, 256, 6, 0)
	simpl := runSpotifyLambdaSimplifiedCost(opts, sp)
	hops := runSpotifyHops(opts, sp, "HopsFS", false, 512)
	hopsCache := runSpotifyHops(opts, sp, "HopsFS+Cache", true, 512)

	cost := &Table{
		ID:      "fig9",
		Title:   "Cumulative cost of the 25k ops/s Spotify workload",
		Columns: []string{"system", "total cost", "vs λFS", "avg perf-per-cost (ops/s/$)"},
	}
	for _, r := range []*spotifyRun{lam, simpl, hops, hopsCache} {
		avgPPC := 0.0
		if len(r.ppcCurve) > 0 {
			var sum float64
			for _, v := range r.ppcCurve {
				sum += v
			}
			avgPPC = sum / float64(len(r.ppcCurve))
		}
		cost.Rows = append(cost.Rows, []string{
			r.label, fmtUSD(r.costUSD), ratio(r.costUSD, lam.costUSD), fmtOps(avgPPC),
		})
	}
	cost.Notes = append(cost.Notes,
		"paper: HopsFS $2.50 vs λFS $0.35 (7.14x); simplified model ~2x λFS's pay-per-use cost")
	cost.Fprint(opts.out())
	return []*Table{cost}
}

// RunFig10 reproduces the per-operation latency CDFs (reported as
// quantiles) for the 25k workload.
func RunFig10(opts Options) []*Table {
	sp := spotifyShape(opts, 25000)
	runs := []*spotifyRun{
		runSpotifyLambda(opts, sp, "λFS", -1, 256, 6, 0),
		runSpotifyHops(opts, sp, "HopsFS", false, 512),
		runSpotifyHops(opts, sp, "HopsFS+Cache", true, 512),
	}
	t := &Table{
		ID:      "fig10",
		Title:   "Latency quantiles per operation type (25k Spotify workload)",
		Columns: []string{"op", "system", "mean", "p50", "p90", "p99"},
	}
	ops := []namespace.OpType{namespace.OpRead, namespace.OpStat, namespace.OpLs,
		namespace.OpCreate, namespace.OpMv, namespace.OpDelete}
	for _, op := range ops {
		for _, r := range runs {
			h := r.rec.PerOp[op]
			if h.Count() == 0 {
				continue
			}
			t.Rows = append(t.Rows, []string{
				op.String(), r.label,
				fmtDur(h.Mean()), fmtDur(h.Quantile(0.5)), fmtDur(h.Quantile(0.9)), fmtDur(h.Quantile(0.99)),
			})
		}
	}
	lamRead := runs[0].rec.PerOp[namespace.OpRead].Mean()
	hopsRead := runs[1].rec.PerOp[namespace.OpRead].Mean()
	lamCreate := runs[0].rec.PerOp[namespace.OpCreate].Mean()
	hopsCreate := runs[1].rec.PerOp[namespace.OpCreate].Mean()
	t.Notes = append(t.Notes,
		fmt.Sprintf("read: λFS %s lower than HopsFS (paper: 6.93-20.13x); write(create): HopsFS %s lower (paper: 1.5-5.55x)",
			ratio(float64(hopsRead), float64(lamRead)), ratio(float64(lamCreate), float64(hopsCreate))))
	t.Fprint(opts.out())
	return []*Table{t}
}

// RunFig15 reproduces the fault-tolerance experiment: the 25k workload
// with one NameNode killed every 30 s round-robin.
func RunFig15(opts Options) []*Table {
	sp := spotifyShape(opts, 25000)
	faultEvery := 30 * time.Second
	if opts.Quick {
		faultEvery = 10 * time.Second
	}
	normal := runSpotifyLambda(opts, sp, "λFS", -1, 256, 6, 0)
	faulty := runSpotifyLambda(opts, sp, "λFS+Failures", -1, 256, 6, faultEvery)
	t := &Table{
		ID:      "fig15",
		Title:   fmt.Sprintf("Fault tolerance: kill one NameNode every %v (25k Spotify workload)", faultEvery),
		Columns: []string{"run", "avg ops/s", "peak ops/s", "completed", "transport errs", "avg lat"},
	}
	for _, r := range []*spotifyRun{normal, faulty} {
		t.Rows = append(t.Rows, []string{
			r.label,
			fmtOps(r.rec.Throughput.MeanRate()),
			fmtOps(r.rec.Throughput.PeakRate()),
			fmt.Sprintf("%d", r.rec.Completed.Load()),
			fmt.Sprintf("%d", r.rec.TransportErrs.Load()),
			fmtDur(r.rec.Overall.Mean()),
		})
	}
	frac := float64(faulty.rec.Completed.Load()) / float64(normal.rec.Completed.Load())
	t.Notes = append(t.Notes,
		fmt.Sprintf("with failures λFS completed %.1f%% of the failure-free run's operations (paper: workload completes, brief dips then catch-up)", 100*frac))
	t.Fprint(opts.out())
	return []*Table{t}
}
