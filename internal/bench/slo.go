package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"lambdafs/internal/chaos"
	"lambdafs/internal/clock"
	"lambdafs/internal/lsm"
	"lambdafs/internal/namespace"
	"lambdafs/internal/ndb"
	"lambdafs/internal/slo"
	"lambdafs/internal/telemetry"
	"lambdafs/internal/workload"
)

// RunSLO runs the alerting experiment in two phases.
//
// Phase A is the chaos alert-coverage battery: every episode family's
// scripted fault scenario runs under the full ChaosRulePack across a
// seed sweep, and each row reports which alerts fired against the
// family's must-fire/must-not-fire contract plus the replayable
// transition digest. A non-zero violation count means an alert either
// stayed silent through the fault it exists for, or fired on a fault
// it should ignore.
//
// Phase B runs the default production rule pack (slo.DefaultRules)
// against a live λFS deployment under a warm-then-burst workload on the
// simulation clock: the SLO engine subscribes to the telemetry scraper
// and evaluates every rule once per virtual second. The table shows the
// final state of each rule and how many firing/resolved transitions the
// run produced.
//
// With Options.SLODir set, the phases leave artifacts: the coverage
// results as slo-coverage.json, the live run's alert log as
// slo-alerts.jsonl, and the live registry/scrape series via the usual
// telemetry artifact pair.
func RunSLO(opts Options) []*Table {
	tables := []*Table{runSLOCoverage(opts), runSLOLive(opts)}
	for _, t := range tables {
		t.Fprint(opts.out())
	}
	return tables
}

// runSLOCoverage is phase A: the chaos alert-coverage battery.
func runSLOCoverage(opts Options) *Table {
	seeds := []int64{opts.Seed, opts.Seed + 1, opts.Seed + 2}
	if opts.Tiny {
		seeds = seeds[:1]
	} else if opts.Quick {
		seeds = seeds[:2]
	}

	t := &Table{
		ID:      "slo-coverage",
		Title:   "Chaos alert coverage (must-fire / must-not-fire contracts)",
		Columns: []string{"family", "seed", "must_fire", "fired", "transitions", "violations", "digest"},
		Notes: []string{
			"replay any row with go test ./internal/chaos/ -run TestAlertCoverage (seeds are pinned there) or via this experiment's -seed",
			"every ChaosRulePack rule appears in each family's contract: silence on a must-not-fire row is an assertion, not a gap",
		},
	}
	var results []*chaos.AlertEpisodeResult
	for _, c := range chaos.AlertContracts() {
		for _, seed := range seeds {
			res := chaos.RunAlertEpisode(chaos.DefaultAlertEpisode(c.Family, seed))
			results = append(results, res)
			t.Rows = append(t.Rows, []string{
				string(res.Family),
				fmt.Sprintf("%d", res.Seed),
				fmt.Sprintf("%v", c.MustFire),
				fmt.Sprintf("%v", res.Fired),
				fmt.Sprintf("%d", len(res.Transitions)),
				fmt.Sprintf("%d", len(res.Violations)),
				res.Digest[:16],
			})
			for _, v := range res.Violations {
				t.Notes = append(t.Notes, "VIOLATION: "+v)
			}
		}
	}
	if opts.SLODir != "" {
		if path, err := writeSLOCoverage(opts.SLODir, results); err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("coverage artifact failed: %v", err))
		} else {
			t.Notes = append(t.Notes, "coverage artifact: "+path)
		}
	}
	return t
}

// runSLOLive is phase B: the default rule pack over a live deployment.
func runSLOLive(opts Options) *Table {
	clk := clock.NewSim()
	defer clk.Close()

	reg := telemetry.NewRegistry()
	p := defaultLambdaParams()
	p.seed = opts.Seed
	p.deployments = 4
	p.clientVMs = 2
	p.metrics = reg
	// The default pack's WAL-stall absence rule needs durable media under
	// the store — without a WAL, commits advancing while appends sit at
	// zero would read as a stall. The checkpoint tier runs with zeroed
	// latencies so durability does not distort the latency rules.
	p.ndbHook = func(cfg *ndb.Config) {
		ckptCfg := lsm.DefaultConfig()
		ckptCfg.PutLatency, ckptCfg.ProbeLatency = 0, 0
		ckptCfg.FlushPerEntry, ckptCfg.CompactPerEntry = 0, 0
		cfg.Durable = ndb.NewDurable(clk, cfg.DataNodes, ckptCfg)
	}

	eng := slo.New(slo.Config{Registry: reg})
	eng.AddRules(slo.DefaultRules())
	fr := telemetry.NewFlightRecorder(0, 0)
	eng.SetEventSink(fr.RecordEvent)

	d, f := microTreeShape(opts)
	dirs, files := workload.GenerateNamespace(d, f)
	var c *lambdaCluster
	clock.Run(clk, func() {
		c = newLambdaCluster(clk, p)
		workload.PreloadNDB(c.db, dirs, files)
	})
	defer func() { clock.Run(clk, c.close) }()

	scraper := telemetry.NewScraper(clk, reg, time.Second)
	scraper.OnSnapshot(eng.Observe)
	scraper.OnSnapshot(fr.RecordSnapshot)
	scraper.Start()

	warmClients, burstClients, per := 8, 48, 96
	if opts.Tiny {
		warmClients, burstClients, per = 4, 16, 32
	} else if opts.Quick {
		warmClients, burstClients, per = 8, 32, 64
	}
	mix := workload.Mix{
		{Op: namespace.OpCreate, Weight: 10},
		{Op: namespace.OpMv, Weight: 2},
		{Op: namespace.OpDelete, Weight: 2},
		{Op: namespace.OpRead, Weight: 40},
		{Op: namespace.OpStat, Weight: 36},
		{Op: namespace.OpLs, Weight: 10},
	}
	tree := workload.NewTree(dirs, files)
	fss := make([]workload.FS, burstClients)
	for i := range fss {
		fss[i] = c.clientFor(i)
	}
	cached := func(i int) workload.FS { return fss[i] }

	// Warm phase: a light load settles instances and caches.
	var warm *workload.Recorder
	clock.Run(clk, func() {
		warm = workload.RunClosedLoop(clk, tree, mix, warmClients, per, opts.Seed, cached)
	})
	// Burst phase: client count jumps — cold starts and queueing spike,
	// which is what the burn-rate and saturation rules watch.
	var burst *workload.Recorder
	clock.Run(clk, func() {
		burst = workload.RunClosedLoop(clk, tree, mix, burstClients, per, opts.Seed+1, cached)
	})
	// Settle phase: a few quiet virtual seconds so resolved transitions
	// have ticks to land on before the final scrape.
	clock.Run(clk, func() { clk.Sleep(5 * time.Second) })
	scraper.ScrapeNow()
	scraper.Stop()

	transByRule := map[string]int{}
	for _, tr := range eng.Transitions() {
		transByRule[tr.Rule]++
	}

	t := &Table{
		ID:      "slo-live",
		Title:   "Default SLO rule pack over a live λFS deployment (warm → burst → settle)",
		Columns: []string{"rule", "kind", "state", "value", "bound", "transitions"},
		Notes: []string{
			fmt.Sprintf("warm_ops=%d burst_ops=%d", warm.Completed.Load(), burst.Completed.Load()),
		},
	}
	for _, st := range eng.Status() {
		t.Rows = append(t.Rows, []string{
			st.Name, st.Kind, st.State,
			fmt.Sprintf("%.6g", st.Value),
			fmt.Sprintf("%.6g", st.Bound),
			fmt.Sprintf("%d", transByRule[st.Name]),
		})
	}
	if opts.SLODir != "" {
		if path, err := writeSLOAlerts(opts.SLODir, eng); err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("alert artifact failed: %v", err))
		} else {
			t.Notes = append(t.Notes, "alert log: "+path)
		}
		if err := writeTelemetryArtifacts(opts.SLODir, "slo-live", reg, scraper); err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("telemetry artifacts failed: %v", err))
		}
		if path, err := dumpFlight(opts.SLODir, "slo-live-flight.jsonl", fr, nil); err == nil {
			t.Notes = append(t.Notes, "flight recorder: "+path)
		}
	}
	return t
}

// writeSLOCoverage dumps the phase-A battery results as JSON.
func writeSLOCoverage(dir string, results []*chaos.AlertEpisodeResult) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "slo-coverage.json")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		_ = f.Close()
		return "", err
	}
	return path, f.Close()
}

// writeSLOAlerts dumps the live engine's transition log as JSONL.
func writeSLOAlerts(dir string, eng *slo.Engine) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "slo-alerts.jsonl")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := eng.WriteAlertsJSONL(f); err != nil {
		_ = f.Close()
		return "", err
	}
	return path, f.Close()
}
