package bench

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"lambdafs/internal/clock"
	"lambdafs/internal/trace"
)

// buildGoldenBreakdown constructs a deterministic span forest on a Manual
// clock: two identical "stat" traces (TCP RPC with a store-RTT child) and
// one "create" trace (HTTP RPC then a coherence round).
func buildGoldenBreakdown() *trace.Breakdown {
	clk := clock.NewManual()
	tr := trace.New(clk, trace.Config{})
	for i := 0; i < 2; i++ {
		tc := tr.StartTrace("stat", "/a", "c1")
		sp := tc.Start(trace.KindRPCTCP)
		child := sp.Ctx().Start(trace.KindStoreRTT)
		clk.Advance(300 * time.Microsecond)
		child.End()
		clk.Advance(700 * time.Microsecond)
		sp.End()
		tc.Finish("")
	}
	tc := tr.StartTrace("create", "/b", "c1")
	sp := tc.Start(trace.KindRPCHTTP)
	clk.Advance(5 * time.Millisecond)
	sp.End()
	sp = tc.Start(trace.KindCoherence)
	clk.Advance(2 * time.Millisecond)
	sp.End()
	tc.Finish("")
	return trace.Aggregate(tr.Traces())
}

// TestBreakdownTableGolden pins the CSV contract of the decomposition
// table: the fixed end-to-end columns followed by one (mean µs, pct) pair
// per span kind in canonical trace.KindOrder. External plotting scripts
// key on these column names and positions.
func TestBreakdownTableGolden(t *testing.T) {
	tb := BreakdownTable(buildGoldenBreakdown())
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	// p50/p99 are bucket upper bounds of the log histogram (<5% relative
	// error), hence 1020 for the 1000µs samples and 7185 for 7000µs.
	golden := strings.Join([]string{
		"op,count,mean_us,p50_us,p99_us,attributed_pct,rpc.tcp_mean_us,rpc.tcp_pct,rpc.http_mean_us,rpc.http_pct,coherence.inv_mean_us,coherence.inv_pct,ndb.rtt_mean_us,ndb.rtt_pct",
		"create,1,7000,7185,7185,100.0,0,0.0,5000,71.4,2000,28.6,0,0.0",
		"stat,2,1000,1020,1020,100.0,700,70.0,0,0.0,0,0.0,300,30.0",
		"",
	}, "\n")
	if sb.String() != golden {
		t.Fatalf("breakdown CSV drifted from golden:\ngot:\n%s\nwant:\n%s", sb.String(), golden)
	}
}

// TestRunTraceExperiment runs the observability experiment end-to-end and
// checks the ISSUE acceptance bar: ≥90% of mean latency attributed to
// named spans for stat/create/mv, and the JSONL dump containing cold
// start, reclamation, and anti-thrashing events.
func TestRunTraceExperiment(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Tiny: true, Quick: true, Seed: 7, TraceDir: dir}
	tables := RunTrace(opts)
	if len(tables) != 3 {
		t.Fatalf("tables = %d", len(tables))
	}
	bd := tables[0]
	col := func(name string) int {
		for i, c := range bd.Columns {
			if c == name {
				return i
			}
		}
		t.Fatalf("column %q missing from %v", name, bd.Columns)
		return -1
	}
	attrIdx := col("attributed_pct")
	seen := map[string]float64{}
	for _, row := range bd.Rows {
		pct, err := strconv.ParseFloat(row[attrIdx], 64)
		if err != nil {
			t.Fatalf("row %v: %v", row, err)
		}
		seen[row[0]] = pct
	}
	for _, op := range []string{"stat", "create", "mv"} {
		pct, ok := seen[op]
		if !ok {
			t.Fatalf("op %q missing from breakdown (rows: %v)", op, seen)
		}
		if pct < 90 {
			t.Errorf("op %q: only %.1f%% of mean latency attributed", op, pct)
		}
		// Self-time accounting must not double-count nested work; small
		// overshoot is legitimate only when hedged attempts overlap.
		if pct > 115 {
			t.Errorf("op %q: %.1f%% attributed — spans double-count", op, pct)
		}
	}
	raw, err := os.ReadFile(filepath.Join(dir, "trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	dump := string(raw)
	for _, ev := range []string{
		string(trace.EventColdStart), string(trace.EventReclaim),
		string(trace.EventKill), string(trace.EventAntiThrashEnter),
		string(trace.EventAntiThrashExit),
	} {
		if !strings.Contains(dump, `"`+ev+`"`) {
			t.Errorf("JSONL dump missing %s events", ev)
		}
	}
}
