package bench

import (
	"os"
	"path/filepath"
	"strings"
	"time"

	"lambdafs/internal/clock"
	"lambdafs/internal/telemetry"
)

// sanitizeName reduces an experiment label to a filesystem-friendly slug:
// lowercase ASCII letters and digits survive, every other rune becomes a
// dash, and runs of dashes collapse ("λFS ReducedCache" → "fs-reducedcache").
func sanitizeName(label string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(label) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	parts := strings.FieldsFunc(b.String(), func(r rune) bool { return r == '-' })
	return strings.Join(parts, "-")
}

// writeTelemetryArtifacts dumps one experiment's telemetry plane into dir:
// <name>.prom holds the final registry state in Prometheus text exposition
// format, and <name>-snapshots.json holds the virtual-time scrape series.
// The scraper may be nil when only the final state is of interest.
func writeTelemetryArtifacts(dir, name string, reg *telemetry.Registry, sc *telemetry.Scraper) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".prom"))
	if err != nil {
		return err
	}
	if err := telemetry.WritePrometheus(f, reg); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if sc == nil {
		return nil
	}
	g, err := os.Create(filepath.Join(dir, name+"-snapshots.json"))
	if err != nil {
		return err
	}
	if err := telemetry.WriteSnapshotsJSON(g, sc.Snapshots()); err != nil {
		_ = g.Close()
		return err
	}
	return g.Close()
}

// dumpFlight records one final registry snapshot into fr (when reg is
// non-nil) and writes the recorder's retained window as JSONL into
// dir/name, returning the written path.
func dumpFlight(dir, name string, fr *telemetry.FlightRecorder, reg *telemetry.Registry) (string, error) {
	if reg != nil {
		sc := telemetry.NewScraper(clock.NewScaled(0), reg, time.Second)
		fr.RecordSnapshot(sc.ScrapeNow())
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := fr.DumpJSONL(f); err != nil {
		_ = f.Close()
		return "", err
	}
	return path, f.Close()
}
