package bench

// The scale experiment answers the question the goroutine-per-client
// drivers cannot: what does the metadata service's throughput/latency
// curve look like from 10³ to 10⁶ concurrent clients? It runs entirely
// on the internal/sim discrete-event scheduler — each client is a
// closed-loop state machine (think → admit → queue → service → think)
// costing one pending heap event, so a 100k-client point simulates in a
// couple of wall seconds and a million-client point stays tractable.
//
// The service surface is a calibrated model, not the full engine stack:
// tenants pass the REAL tenant.Registry admission path (token buckets,
// in-flight caps, lambdafs_tenant_* instruments) and then queue onto
// per-shard single-server FIFOs under weighted fair queuing, with
// per-op service times matching the hotpath experiment's observed
// shape. Shard count scales elastically with the client population
// (one shard per ~4k clients — the serverless story), and tenants are
// spread over shards by tenant.Placement's load-proportional
// allocation.
//
// Every point is bit-deterministic: per-client splitmix64 PRNGs, the
// scheduler's FIFO-stable heap, and integer virtual time make the
// scheduler digest, op counts, and latency quantiles exact replay
// invariants — which is what the committed BENCH_scale.json gates on.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"lambdafs/internal/namespace"
	"lambdafs/internal/sim"
	"lambdafs/internal/slo"
	"lambdafs/internal/telemetry"
	"lambdafs/internal/tenant"
	"lambdafs/internal/workload"
)

// ScaleSchema identifies the BENCH_scale.json format.
const ScaleSchema = "lambdafs-scale-baseline/v1"

// scaleServiceNS is the modeled per-op shard service time (ns), indexed
// by namespace.OpType: reads are cache-shaped, writes pay the coherence
// round.
var scaleServiceNS = [namespace.NumOps]int64{
	namespace.OpCreate: 150_000,
	namespace.OpMkdirs: 150_000,
	namespace.OpDelete: 150_000,
	namespace.OpMv:     200_000,
	namespace.OpRead:   60_000,
	namespace.OpStat:   40_000,
	namespace.OpLs:     80_000,
}

// scalePoint is one measured (population, duration) point.
type scalePoint struct {
	clients int
	seconds int
}

func scalePoints(opts Options) []scalePoint {
	switch {
	case opts.Tiny:
		return []scalePoint{{1_000, 2}, {10_000, 2}}
	case opts.Quick:
		return []scalePoint{{1_000, 8}, {10_000, 8}, {100_000, 8}}
	default:
		return []scalePoint{{10_000, 10}, {100_000, 10}, {1_000_000, 10}}
	}
}

// ScaleRow is one point of the committed scale baseline. All fields are
// exact replay invariants of (mode, seed).
type ScaleRow struct {
	Clients   int    `json:"clients"`
	Shards    int    `json:"shards"`
	Ops       uint64 `json:"ops"`
	Throttled uint64 `json:"throttled"`
	P50Us     int64  `json:"p50_us"`
	P99Us     int64  `json:"p99_us"`
	// Digest is the scheduler's executed-event-order digest: any change
	// to the model's scheduling decisions shows up here first.
	Digest string `json:"digest"`
}

// ScaleBaseline is the committed BENCH_scale.json document.
type ScaleBaseline struct {
	Schema string               `json:"schema"`
	Mode   string               `json:"mode"`
	Seed   int64                `json:"seed"`
	Rows   map[string]*ScaleRow `json:"rows"`
}

func scaleMode(opts Options) string {
	switch {
	case opts.Tiny:
		return "tiny"
	case opts.Quick:
		return "quick"
	default:
		return "full"
	}
}

// scaleTenantStat is one tenant's outcome at a measured point.
type scaleTenantStat struct {
	name      string
	clients   int
	admitted  uint64
	throttled uint64
	p99       time.Duration
}

// scaleResult is one simulated point.
type scaleResult struct {
	scalePoint
	shards    int
	ops       uint64
	throttled uint64
	p50, p99  time.Duration
	digest    uint64
	wall      time.Duration
	tenants   []scaleTenantStat
	alerts    []string
}

// splitmix64 advances a 64-bit PRNG state; one word of state per client
// is what keeps a million-client population cheap.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unitFloat maps a PRNG draw onto [0, 1).
func unitFloat(state *uint64) float64 {
	return float64(splitmix64(state)>>11) / float64(1<<53)
}

// scaleClient is one simulated client's whole state.
type scaleClient struct {
	rng   uint64
	class uint8
	shard int32
}

// scaleReq is one admitted operation waiting in a shard queue.
type scaleReq struct {
	ci      int32
	class   uint8
	op      uint8
	arrival time.Duration
}

// scaleShard is one modeled namespace shard: a single server draining a
// weighted-fair queue.
type scaleShard struct {
	q    *tenant.FairQueue[scaleReq]
	busy bool
}

// runScalePoint simulates one (clients, seconds) point.
func runScalePoint(pt scalePoint, seed int64) *scaleResult {
	wallStart := time.Now() //vet:allow virtualtime reports host simulation runtime, not simulated latency
	classes := workload.DefaultTenantClasses()
	horizon := time.Duration(pt.seconds) * time.Second

	sch := sim.New(pt.clients + 64)
	reg := telemetry.NewRegistry()
	treg := tenant.NewRegistry(sch.Clock(), reg)
	sc := telemetry.NewScraper(sch.Clock(), reg, time.Second)
	sloEng := slo.New(slo.Config{Registry: reg})
	sloEng.AddRules(slo.DefaultRules())
	sc.OnSnapshot(sloEng.Observe)

	// Tenant population: class shares of the client count (remainder to
	// the first class), admission contracts derived from each tenant's
	// expected demand.
	names := make([]string, len(classes))
	weights := make([]float64, len(classes))
	classClients := make([]int, len(classes))
	thinkMeanNS := make([]float64, len(classes))
	assigned := 0
	for i, cls := range classes {
		names[i] = cls.Name
		weights[i] = cls.Weight
		classClients[i] = cls.Clients(pt.clients)
		assigned += classClients[i]
		thinkMeanNS[i] = float64(time.Second) / cls.OpsPerClient
	}
	classClients[0] += pt.clients - assigned
	demand := make(map[string]float64, len(classes))
	for i, cls := range classes {
		treg.Register(cls.AdmissionClass(classClients[i]))
		demand[cls.Name] = float64(classClients[i]) * cls.OpsPerClient
	}

	// Pre-sampled cumulative mix thresholds per class (avoids touching
	// workload.Mix.Sample's rand.Rand in the event loop).
	cum := make([][]float64, len(classes))
	ops := make([][]uint8, len(classes))
	for i, cls := range classes {
		total := 0.0
		for _, w := range cls.Mix {
			total += w.Weight
		}
		acc := 0.0
		for _, w := range cls.Mix {
			acc += w.Weight
			cum[i] = append(cum[i], acc/total)
			ops[i] = append(ops[i], uint8(w.Op))
		}
	}

	// Elastic shards: one per ~4k clients, and load-proportional tenant
	// spreads over them.
	nShards := pt.clients / 4000
	if nShards < 8 {
		nShards = 8
	}
	place := tenant.NewPlacement(nShards)
	place.RebalanceProportional(demand)
	shards := make([]scaleShard, nShards)
	for i := range shards {
		shards[i].q = tenant.NewFairQueue[scaleReq]()
	}

	// Client state machines.
	clients := make([]scaleClient, pt.clients)
	ci := 0
	for classIdx := range classes {
		for k := 0; k < classClients[classIdx]; k++ {
			clients[ci] = scaleClient{
				rng:   uint64(seed)*0x9e3779b97f4a7c15 + uint64(ci)*0xbf58476d1ce4e5b9 + 1,
				class: uint8(classIdx),
				shard: int32(place.ClientShard(names[classIdx], k)),
			}
			ci++
		}
	}

	res := &scaleResult{scalePoint: pt, shards: nShards}
	estOps := int(float64(pt.clients) * float64(pt.seconds) * 1.3)
	lat := make([]int64, 0, estOps)
	perTenantLat := make([][]int64, len(classes))
	for i, n := range classClients {
		perTenantLat[i] = make([]int64, 0, n*pt.seconds*2)
	}

	var issue []func() // per-client issue closures, allocated once
	next := func(i int32) {
		c := &clients[i]
		think := time.Duration(-math.Log(1-unitFloat(&c.rng)) * thinkMeanNS[c.class])
		sch.After(think, issue[i])
	}
	var startService func(si int32)
	startService = func(si int32) {
		sh := &shards[si]
		req, ok := sh.q.Pop()
		if !ok {
			sh.busy = false
			return
		}
		sh.busy = true
		sch.After(time.Duration(scaleServiceNS[req.op]), func() {
			d := int64(sch.Now() - req.arrival)
			lat = append(lat, d)
			perTenantLat[req.class] = append(perTenantLat[req.class], d)
			res.ops++
			treg.Done(names[req.class])
			next(req.ci)
			startService(si)
		})
	}
	issue = make([]func(), pt.clients)
	for i := range issue {
		i := int32(i)
		issue[i] = func() {
			c := &clients[i]
			u := unitFloat(&c.rng)
			classIdx := c.class
			opIdx := 0
			for opIdx < len(cum[classIdx])-1 && u > cum[classIdx][opIdx] {
				opIdx++
			}
			if err := treg.Admit(names[classIdx]); err != nil {
				res.throttled++
				next(i)
				return
			}
			sh := &shards[c.shard]
			sh.q.Push(names[classIdx], weights[classIdx],
				scaleReq{ci: i, class: classIdx, op: ops[classIdx][opIdx], arrival: sch.Now()})
			if !sh.busy {
				startService(c.shard)
			}
		}
	}

	// Staggered starts: uniform over one think interval.
	for i := range clients {
		c := &clients[i]
		sch.After(time.Duration(unitFloat(&c.rng)*thinkMeanNS[c.class]), issue[int32(i)])
	}
	// One telemetry scrape per virtual second feeds the SLO engine.
	var tick func()
	tick = func() {
		sc.ScrapeNow()
		if sch.Now()+time.Second <= horizon {
			sch.After(time.Second, tick)
		}
	}
	sch.After(time.Second, tick)

	sch.RunUntil(horizon)

	res.digest = sch.Digest()
	res.p50, res.p99 = latQuantiles(lat)
	for i := range classes {
		_, p99 := latQuantiles(perTenantLat[i])
		t := treg.Lookup(names[i])
		res.tenants = append(res.tenants, scaleTenantStat{
			name:      names[i],
			clients:   classClients[i],
			admitted:  uint64(t.Admitted()),
			throttled: uint64(t.Throttled()),
			p99:       p99,
		})
	}
	fired := map[string]bool{}
	for _, tr := range sloEng.Transitions() {
		if tr.To == slo.StateFiring && !fired[tr.Rule] {
			fired[tr.Rule] = true
			res.alerts = append(res.alerts, tr.Rule)
		}
	}
	sort.Strings(res.alerts)
	res.wall = time.Since(wallStart) //vet:allow virtualtime host-runtime measurement is genuinely wall-clock
	return res
}

// latQuantiles sorts in place and returns (p50, p99); zeros when empty.
func latQuantiles(lat []int64) (p50, p99 time.Duration) {
	if len(lat) == 0 {
		return 0, 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	idx := func(q float64) int64 {
		i := int(q * float64(len(lat)-1))
		return lat[i]
	}
	return time.Duration(idx(0.50)), time.Duration(idx(0.99))
}

// ScaleMeasure runs the mode's client-count sweep and returns the
// baseline document plus the results for rendering.
func ScaleMeasure(opts Options) (*ScaleBaseline, []*scaleResult) {
	b := &ScaleBaseline{
		Schema: ScaleSchema,
		Mode:   scaleMode(opts),
		Seed:   opts.Seed,
		Rows:   make(map[string]*ScaleRow),
	}
	var results []*scaleResult
	for _, pt := range scalePoints(opts) {
		r := runScalePoint(pt, opts.Seed)
		results = append(results, r)
		b.Rows[fmt.Sprintf("c%d", pt.clients)] = &ScaleRow{
			Clients:   pt.clients,
			Shards:    r.shards,
			Ops:       r.ops,
			Throttled: r.throttled,
			P50Us:     r.p50.Microseconds(),
			P99Us:     r.p99.Microseconds(),
			Digest:    fmt.Sprintf("%016x", r.digest),
		}
	}
	return b, results
}

// RunScale is the `scale` experiment: the throughput/p99-vs-client-count
// curve plus the per-tenant admission breakdown at the largest point.
func RunScale(opts Options) []*Table {
	_, results := ScaleMeasure(opts)
	tables := scaleTables(results)
	for _, tb := range tables {
		tb.Fprint(opts.out())
	}
	return tables
}

// ScaleProbe runs a single point of the scale model (the shell's
// interactive entry point).
func ScaleProbe(clients, seconds int, seed int64) []*Table {
	return scaleTables([]*scaleResult{runScalePoint(scalePoint{clients, seconds}, seed)})
}

func scaleTables(results []*scaleResult) []*Table {
	curve := &Table{
		ID:    "scale_curve",
		Title: "client count vs throughput and latency (discrete-event model)",
		Columns: []string{"clients", "shards", "ops", "throughput",
			"p50", "p99", "throttled", "wall"},
	}
	for _, r := range results {
		thr := float64(r.ops) / float64(r.seconds)
		curve.Rows = append(curve.Rows, []string{
			fmtOps(float64(r.clients)), fmt.Sprintf("%d", r.shards),
			fmtOps(float64(r.ops)), fmtOps(thr) + "/s",
			fmtDur(r.p50), fmtDur(r.p99),
			fmtOps(float64(r.throttled)), fmtDur(r.wall),
		})
	}
	curve.Notes = append(curve.Notes,
		"closed-loop clients on the internal/sim event heap; admission via tenant token buckets; per-shard WFQ service model",
		fmt.Sprintf("virtual duration %ds per point; wall column is host simulation time", results[0].seconds))

	last := results[len(results)-1]
	tenants := &Table{
		ID:      "scale_tenants",
		Title:   fmt.Sprintf("per-tenant admission at %s clients", fmtOps(float64(last.clients))),
		Columns: []string{"tenant", "clients", "admitted", "throttled", "throttle%", "p99"},
	}
	for _, ts := range last.tenants {
		total := ts.admitted + ts.throttled
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(ts.throttled) / float64(total)
		}
		tenants.Rows = append(tenants.Rows, []string{
			ts.name, fmtOps(float64(ts.clients)),
			fmtOps(float64(ts.admitted)), fmtOps(float64(ts.throttled)),
			fmt.Sprintf("%.1f%%", pct), fmtDur(ts.p99),
		})
	}
	if len(last.alerts) > 0 {
		tenants.Notes = append(tenants.Notes,
			fmt.Sprintf("SLO rules fired during the run: %v", last.alerts))
	} else {
		tenants.Notes = append(tenants.Notes, "no SLO rules fired during the run")
	}
	tenants.Notes = append(tenants.Notes,
		"crawler is provisioned below demand by design — the throttle column is admission control working")
	return []*Table{curve, tenants}
}

// WriteScaleBaseline measures the sweep and writes BENCH_scale.json.
func WriteScaleBaseline(path string, opts Options) error {
	b, _ := ScaleMeasure(opts)
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// CheckScaleBaseline re-runs the sweep at the committed baseline's mode
// and seed and fails on ANY divergence: the model is bit-deterministic,
// so op counts, throttle counts, latency quantiles, and the scheduler
// digest must all match exactly. An intentional model change regenerates
// the file with -scalebaseline.
func CheckScaleBaseline(path string, opts Options) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var committed ScaleBaseline
	if err := json.Unmarshal(data, &committed); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	if committed.Schema != ScaleSchema {
		return fmt.Errorf("baseline schema %q, want %q (regenerate with -scalebaseline)",
			committed.Schema, ScaleSchema)
	}
	opts.Quick = committed.Mode == "quick"
	opts.Tiny = committed.Mode == "tiny"
	opts.Seed = committed.Seed
	cur, _ := ScaleMeasure(opts)
	var fails []string
	for _, pt := range scalePoints(opts) {
		key := fmt.Sprintf("c%d", pt.clients)
		want, ok := committed.Rows[key]
		if !ok {
			return fmt.Errorf("baseline %s lacks point %q (regenerate with -scalebaseline)", path, key)
		}
		got := cur.Rows[key]
		if got.Digest != want.Digest {
			fails = append(fails, fmt.Sprintf(
				"%s: scheduler digest %s, baseline %s (event stream diverged)",
				key, got.Digest, want.Digest))
		}
		if got.Ops != want.Ops || got.Throttled != want.Throttled {
			fails = append(fails, fmt.Sprintf(
				"%s: ops/throttled %d/%d, baseline %d/%d",
				key, got.Ops, got.Throttled, want.Ops, want.Throttled))
		}
		if got.P50Us != want.P50Us || got.P99Us != want.P99Us {
			fails = append(fails, fmt.Sprintf(
				"%s: p50/p99 %dus/%dus, baseline %dus/%dus",
				key, got.P50Us, got.P99Us, want.P50Us, want.P99Us))
		}
		if got.Shards != want.Shards {
			fails = append(fails, fmt.Sprintf(
				"%s: %d shards, baseline %d", key, got.Shards, want.Shards))
		}
	}
	if len(fails) > 0 {
		return fmt.Errorf("scale model regression vs %s:\n  %s", path, joinLines(fails))
	}
	return nil
}
