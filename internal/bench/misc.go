package bench

import (
	"fmt"
	"math/rand"
	"time"

	"lambdafs/internal/clock"
	"lambdafs/internal/core"
	"lambdafs/internal/faas"
	"lambdafs/internal/indexfs"
	"lambdafs/internal/namespace"
	"lambdafs/internal/rpc"
	"lambdafs/internal/workload"
)

// RunTab2 verifies the workload generator reproduces Table 2's mix.
func RunTab2(opts Options) []*Table {
	mix := workload.SpotifyMix()
	rng := rand.New(rand.NewSource(opts.Seed + 1))
	const n = 500_000
	counts := map[namespace.OpType]int{}
	for i := 0; i < n; i++ {
		counts[mix.Sample(rng)]++
	}
	t := &Table{
		ID:      "tab2",
		Title:   "Spotify workload operation mix (sampled vs Table 2)",
		Columns: []string{"operation", "paper %", "sampled %"},
	}
	for _, w := range mix {
		t.Rows = append(t.Rows, []string{
			w.Op.String(),
			fmt.Sprintf("%.2f", w.Weight),
			fmt.Sprintf("%.2f", 100*float64(counts[w.Op])/n),
		})
	}
	t.Rows = append(t.Rows, []string{"total reads", "95.23", fmt.Sprintf("%.2f",
		100*float64(counts[namespace.OpRead]+counts[namespace.OpStat]+counts[namespace.OpLs])/n)})
	t.Fprint(opts.out())
	return []*Table{t}
}

// RunTab3 reproduces Table 3: end-to-end latency of subtree mv for
// growing directory sizes, λFS vs HopsFS.
func RunTab3(opts Options) []*Table {
	sizes := []int{1 << 14, 1 << 15, 1 << 16}
	if opts.Tiny {
		sizes = []int{1 << 12, 1 << 13}
	} else if !opts.Quick {
		sizes = []int{1 << 18, 1 << 19, 1 << 20}
	}
	t := &Table{
		ID:      "tab3",
		Title:   "Subtree mv latency by directory size",
		Columns: []string{"dir size", "HopsFS", "λFS", "λFS/HopsFS"},
	}
	for _, size := range sizes {
		hops := subtreeMvLatency(opts, size, false)
		lam := subtreeMvLatency(opts, size, true)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", size), fmtDur(hops), fmtDur(lam), ratio(float64(lam), float64(hops)),
		})
	}
	t.Notes = append(t.Notes,
		"paper (262k/524k/1.04M files): HopsFS 7.51s/14.18s/25.14s, λFS 6.46s/12.51s/25.22s — λFS slightly faster until the store dominates")
	t.Fprint(opts.out())
	return []*Table{t}
}

// subtreeMvLatency measures one mv of a size-file directory.
func subtreeMvLatency(opts Options, size int, useLambda bool) time.Duration {
	clk := clock.NewSim()
	defer clk.Close()
	dirs, files := workload.DeepNamespace("/mvroot", size)
	var fs workload.FS
	closer := func() {}
	clock.Run(clk, func() {
		if useLambda {
			p := defaultLambdaParams()
			p.seed = opts.Seed
			p.minInstances = 1
			c := newLambdaCluster(clk, p)
			workload.PreloadNDB(c.db, dirs, files)
			fs = c.clientFor(0)
			closer = c.close
		} else {
			h := newHopsCluster(clk, false, 512)
			workload.PreloadNDB(h.db, dirs, files)
			fs = h.clientFor(0)
		}
	})
	defer func() { clock.Run(clk, closer) }()
	var lat time.Duration
	clock.Run(clk, func() {
		start := clk.Now()
		resp, err := fs.Do(namespace.OpMv, "/mvroot", "/moved")
		if err != nil || !resp.OK() {
			lat = -1
			return
		}
		lat = clk.Since(start)
	})
	return lat
}

// RunFig16 reproduces the λIndexFS vs IndexFS tree-test comparison.
func RunFig16(opts Options) []*Table {
	sizes := []int{2, 16, 128}
	if opts.Tiny {
		sizes = []int{2, 16}
	} else if !opts.Quick {
		sizes = []int{2, 4, 8, 16, 32, 64, 128, 256}
	}
	perClient := 10_000
	fixedTotal := 1_000_000
	if opts.Quick {
		perClient = 300
		fixedTotal = 16_000
	}
	if opts.Tiny {
		perClient = 200
		fixedTotal = 6_400
	}
	var tables []*Table
	for _, fixed := range []bool{false, true} {
		name := "variable-sized (per-client writes+reads)"
		id := "fig16-variable"
		if fixed {
			name = fmt.Sprintf("fixed-sized (%d writes + %d reads total)", fixedTotal, fixedTotal)
			id = "fig16-fixed"
		}
		t := &Table{
			ID:      id,
			Title:   "λIndexFS vs IndexFS tree-test: " + name,
			Columns: append([]string{"system/metric"}, sizeCols(sizes)...),
		}
		rows := map[string][]string{
			"IndexFS write": {"IndexFS write"}, "IndexFS read": {"IndexFS read"}, "IndexFS agg": {"IndexFS agg"},
			"λIndexFS write": {"λIndexFS write"}, "λIndexFS read": {"λIndexFS read"}, "λIndexFS agg": {"λIndexFS agg"},
		}
		for _, clients := range sizes {
			writes, reads := perClient, perClient
			if fixed {
				writes = fixedTotal / clients
				reads = fixedTotal / clients
			}
			iRes := runTreeTestIndexFS(opts, clients, writes, reads)
			lRes := runTreeTestLambdaIndexFS(opts, clients, writes, reads)
			rows["IndexFS write"] = append(rows["IndexFS write"], fmtOps(iRes.WriteThroughput()))
			rows["IndexFS read"] = append(rows["IndexFS read"], fmtOps(iRes.ReadThroughput()))
			rows["IndexFS agg"] = append(rows["IndexFS agg"], fmtOps(iRes.AggThroughput()))
			rows["λIndexFS write"] = append(rows["λIndexFS write"], fmtOps(lRes.WriteThroughput()))
			rows["λIndexFS read"] = append(rows["λIndexFS read"], fmtOps(lRes.ReadThroughput()))
			rows["λIndexFS agg"] = append(rows["λIndexFS agg"], fmtOps(lRes.AggThroughput()))
		}
		for _, k := range []string{"IndexFS write", "IndexFS read", "IndexFS agg",
			"λIndexFS write", "λIndexFS read", "λIndexFS agg"} {
			t.Rows = append(t.Rows, rows[k])
		}
		t.Notes = append(t.Notes,
			"paper: λIndexFS reads consistently higher (function-side cache); writes higher via auto-scaling but dip past 2^6 clients (64-vCPU OpenWhisk limit)")
		t.Fprint(opts.out())
		tables = append(tables, t)
	}
	return tables
}

type indexTreeFS struct{ c *indexfs.Client }

func (f indexTreeFS) Mknod(p string) error { return f.c.Mknod(p) }
func (f indexTreeFS) Getattr(p string) (bool, error) {
	_, ok, err := f.c.Getattr(p)
	return ok, err
}

type lambdaTreeFS struct{ c *indexfs.LambdaClient }

func (f lambdaTreeFS) Mknod(p string) error { return f.c.Mknod(p) }
func (f lambdaTreeFS) Getattr(p string) (bool, error) {
	_, ok, err := f.c.Getattr(p)
	return ok, err
}

func runTreeTestIndexFS(opts Options, clients, writes, reads int) workload.TreeTestResult {
	clk := clock.NewSim()
	defer clk.Close()
	cfg := indexfs.DefaultConfig()
	cl := indexfs.New(clk, cfg)
	var res workload.TreeTestResult
	clock.Run(clk, func() {
		res = workload.RunTreeTest(clk, workload.TreeTestConfig{
			Clients: clients, WritesPerClient: writes, ReadsPerClient: reads, Seed: opts.Seed,
		}, func(i int) workload.TreeTestFS {
			return indexTreeFS{cl.NewClient(fmt.Sprintf("c%d", i))}
		})
	})
	return res
}

func runTreeTestLambdaIndexFS(opts Options, clients, writes, reads int) workload.TreeTestResult {
	clk := clock.NewSim()
	defer clk.Close()
	fCfg := faas.DefaultConfig()
	fCfg.TotalVCPU = 64 // the paper's OpenWhisk cluster for §5.7
	fCfg.GatewayLatency = 4 * time.Millisecond
	fCfg.ColdStart = 900 * time.Millisecond
	fCfg.IdleReclaim = 30 * time.Second
	var platform *faas.Platform
	var sys *indexfs.LambdaSystem
	clock.Run(clk, func() {
		platform = faas.New(clk, fCfg)
		sys = indexfs.NewLambda(clk, platform, indexfs.DefaultLambdaConfig())
	})
	defer platform.Close()
	rCfg := rpc.DefaultConfig()
	rCfg.Seed = opts.Seed
	vm := rpc.NewVM(clk, rCfg)
	var res workload.TreeTestResult
	clock.Run(clk, func() {
		res = workload.RunTreeTest(clk, workload.TreeTestConfig{
			Clients: clients, WritesPerClient: writes, ReadsPerClient: reads, Seed: opts.Seed,
		}, func(i int) workload.TreeTestFS {
			return lambdaTreeFS{sys.NewClient(vm, fmt.Sprintf("c%d", i))}
		})
	})
	return res
}

// RunAblationRPC sweeps the HTTP-TCP replacement probability, including
// HTTP-only operation (design ablation of §3.2/§3.4).
func RunAblationRPC(opts Options) []*Table {
	probs := []float64{0, 0.005, 0.05, 1.0}
	if opts.Tiny {
		probs = []float64{0.005, 1.0}
	}
	clients := 128
	if opts.Tiny {
		clients = 64
	}
	per := microOpsPerClient(opts)
	t := &Table{
		ID:      "ablation-rpc",
		Title:   fmt.Sprintf("HTTP-TCP replacement probability sweep (read, %d clients)", clients),
		Columns: []string{"replace prob", "ops/s", "mean lat"},
	}
	for _, prob := range probs {
		r := runReplaceProb(opts, prob, clients, per)
		label := fmt.Sprintf("%.1f%%", prob*100)
		if prob == 1.0 {
			label = "100% (HTTP only)"
		}
		t.Rows = append(t.Rows, []string{label, fmtOps(r.throughput), fmtDur(r.meanLat)})
	}
	t.Notes = append(t.Notes, "§3.4: ≤1% performs best — enough HTTP for scaling signals, TCP latency for the rest; HTTP-only pays the gateway on every op")
	t.Fprint(opts.out())
	return []*Table{t}
}

func runReplaceProb(opts Options, prob float64, clients, per int) microResult {
	sys := microSystem{
		name: "λFS",
		build: func(clk *clock.Sim, vcpus int, dirs, files []string) (func(int) workload.FS, func(time.Duration) float64, func()) {
			p := defaultLambdaParams()
			p.seed = opts.Seed
			p.totalVCPU = float64(vcpus)
			p.replaceProb = prob
			p.minInstances = 1
			c := newLambdaCluster(clk, p)
			workload.PreloadNDB(c.db, dirs, files)
			return c.clientFor, func(time.Duration) float64 { return 0 }, c.close
		},
	}
	return runMicro(opts, sys, namespace.OpRead, clients, 512, per)
}

// RunAblationBatch sweeps the subtree sub-operation batch size with and
// without serverless offloading (Appendix D).
func RunAblationBatch(opts Options) []*Table {
	size := 1 << 14
	if opts.Tiny {
		size = 1 << 12
	} else if !opts.Quick {
		size = 1 << 17
	}
	batches := []int{64, 512, 4096}
	t := &Table{
		ID:      "ablation-batch",
		Title:   fmt.Sprintf("Subtree delete latency (%d files) by batch size and offloading", size),
		Columns: []string{"batch", "offload", "latency"},
	}
	for _, batch := range batches {
		for _, offload := range []bool{true, false} {
			lat := subtreeDeleteLatency(opts, size, batch, offload)
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", batch), fmt.Sprintf("%v", offload), fmtDur(lat),
			})
		}
	}
	t.Notes = append(t.Notes, "Appendix D: larger batches amortize offload hops; default 512")
	t.Fprint(opts.out())
	return []*Table{t}
}

func subtreeDeleteLatency(opts Options, size, batch int, offload bool) time.Duration {
	clk := clock.NewSim()
	defer clk.Close()
	p := defaultLambdaParams()
	p.seed = opts.Seed
	p.minInstances = 1
	var c *lambdaCluster
	dirs, files := workload.DeepNamespace("/victim", size)
	clock.Run(clk, func() {
		c = newLambdaClusterWith(clk, p, func(cfg *core.SystemConfig) {
			cfg.Engine.SubtreeBatch = batch
			if !offload {
				cfg.OffloadLatency = -1
			}
		})
		workload.PreloadNDB(c.db, dirs, files)
	})
	defer func() { clock.Run(clk, c.close) }()
	var lat time.Duration
	clock.Run(clk, func() {
		start := clk.Now()
		resp, err := c.clientFor(0).Do(namespace.OpDelete, "/victim", "")
		if err != nil || !resp.OK() {
			lat = -1
			return
		}
		lat = clk.Since(start)
	})
	return lat
}
