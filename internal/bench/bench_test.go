package bench

import (
	"os"
	"strings"
	"testing"
	"time"

	"lambdafs/internal/namespace"
)

func tinyOpts() Options {
	return Options{Quick: true, Seed: 7}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		ID: "x", Title: "demo",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "22"}, {"333", "4"}},
		Notes:   []string{"n"},
	}
	var sb strings.Builder
	tb.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"demo", "333", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"tab2", "fig8a", "fig8b", "fig9", "fig10", "fig11", "fig12",
		"fig13", "fig14", "tab3", "fig15", "fig16", "ablation-rpc", "ablation-batch", "trace", "chaos"}
	for _, name := range want {
		if _, ok := Find(name); !ok {
			t.Errorf("experiment %q missing from registry", name)
		}
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("unknown experiment found")
	}
}

func TestTab2Mix(t *testing.T) {
	tables := RunTab2(tinyOpts())
	if len(tables) != 1 || len(tables[0].Rows) != 8 {
		t.Fatalf("tab2 shape: %+v", tables)
	}
}

func TestMicroPointLambdaVsHops(t *testing.T) {
	// One tiny closed-loop point per system: λFS's cached reads must beat
	// stateless HopsFS (the evaluation's central claim).
	opts := tinyOpts()
	lam := runMicro(opts, lambdaMicro(0, opts.Seed), namespace.OpRead, 32, 512, 48)
	hops := runMicro(opts, hopsMicro(false), namespace.OpRead, 32, 512, 48)
	if lam.throughput <= 0 || hops.throughput <= 0 {
		t.Fatalf("throughputs: λFS=%v hops=%v", lam.throughput, hops.throughput)
	}
	if lam.throughput < hops.throughput {
		t.Fatalf("λFS read throughput %.0f below HopsFS %.0f", lam.throughput, hops.throughput)
	}
	if lam.meanLat >= hops.meanLat {
		t.Fatalf("λFS read latency %v not below HopsFS %v", lam.meanLat, hops.meanLat)
	}
}

func TestMicroPointOtherBaselines(t *testing.T) {
	opts := tinyOpts()
	for _, sys := range []microSystem{hopsMicro(true), infiniMicro(), cephMicro()} {
		r := runMicro(opts, sys, namespace.OpStat, 16, 512, 32)
		if r.throughput <= 0 {
			t.Fatalf("%s produced no throughput", sys.name)
		}
	}
}

func TestSubtreeMvLatencyScalesWithSize(t *testing.T) {
	opts := tinyOpts()
	small := subtreeMvLatency(opts, 1<<9, true)
	big := subtreeMvLatency(opts, 1<<12, true)
	if small <= 0 || big <= 0 {
		t.Fatalf("latencies: %v %v", small, big)
	}
	if big <= small {
		t.Fatalf("subtree mv latency did not grow with size: %v vs %v", small, big)
	}
}

func TestTreeTestRunners(t *testing.T) {
	opts := tinyOpts()
	i := runTreeTestIndexFS(opts, 4, 50, 50)
	l := runTreeTestLambdaIndexFS(opts, 4, 50, 50)
	if i.WriteOps != 200 || l.WriteOps != 200 {
		t.Fatalf("write ops: %d / %d", i.WriteOps, l.WriteOps)
	}
	if i.ReadErrs > 0 || l.ReadErrs > 0 {
		t.Fatalf("read errors: %d / %d", i.ReadErrs, l.ReadErrs)
	}
	if i.WriteDur <= 0 || l.WriteDur <= 0 {
		t.Fatal("durations missing")
	}
}

func TestSpotifyTinyRun(t *testing.T) {
	// A miniature Spotify run end to end on λFS (5 virtual seconds).
	opts := tinyOpts()
	sp := spotifyParams{
		base: 2000, duration: 5 * time.Second, interval: 5 * time.Second,
		targets: []float64{2000}, clients: 32, dirs: 16, files: 50,
	}
	run := runSpotifyLambda(opts, sp, "λFS", -1, 256, 6, 0)
	if run.rec.Completed.Load() == 0 {
		t.Fatal("no operations completed")
	}
	if run.costUSD <= 0 {
		t.Fatal("no cost accrued")
	}
	mean := run.rec.Throughput.MeanRate()
	if mean < sp.base/2 {
		t.Fatalf("λFS failed to track even half the base rate: %.0f ops/s", mean)
	}
}

func TestSpotifyHopsTinyRun(t *testing.T) {
	opts := tinyOpts()
	sp := spotifyParams{
		base: 2000, duration: 5 * time.Second, interval: 5 * time.Second,
		targets: []float64{2000}, clients: 32, dirs: 16, files: 50,
	}
	run := runSpotifyHops(opts, sp, "HopsFS", false, 512)
	if run.rec.Completed.Load() == 0 {
		t.Fatal("no operations completed")
	}
	if run.costUSD <= 0 {
		t.Fatal("no cost computed")
	}
}

func TestTableCSVExport(t *testing.T) {
	tb := &Table{
		ID:      "csvtest",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "x,y"}, {"2", `q"z`}},
	}
	dir := t.TempDir()
	if err := tb.SaveCSV(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dir + "/csvtest.csv")
	if err != nil {
		t.Fatal(err)
	}
	got := string(data)
	for _, want := range []string{"a,b\n", `"x,y"`, `"q""z"`} {
		if !strings.Contains(got, want) {
			t.Fatalf("csv missing %q:\n%s", want, got)
		}
	}
}
