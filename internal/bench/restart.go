package bench

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"lambdafs/internal/chaos"
	"lambdafs/internal/clock"
	"lambdafs/internal/lsm"
	"lambdafs/internal/namespace"
	"lambdafs/internal/ndb"
)

// This file implements the restart experiment: the durability tier's
// recovery cost as a function of log length and checkpoint cadence.
// Each scenario commits a fixed number of write transactions against a
// durable store (optionally checkpointing on a cadence), "crashes" by
// abandoning the live DB, recovers from the media with ndb.Recover, and
// reports the WAL footprint, the replayed-record count, the virtual
// recovery time, and whether the recovered state is digest-identical to
// the pre-crash committed state. A second table summarises seeded
// chaos crash_restart episodes (fault-flavoured crashes mid-workload).
// All recovery latencies are virtual (WAL fsync, per-record replay, and
// checkpoint probes are billed on the simulated clock), so runs are
// deterministic and the committed BENCH_restart.json regression gate is
// tight: replayed-record counts must match exactly and recovery time
// may not regress more than 10%.

// RestartSchema identifies the baseline file format.
const RestartSchema = "lambdafs-restart-baseline/v1"

// RestartRow is one measured recovery scenario.
type RestartRow struct {
	// Commits is the number of committed write transactions.
	Commits int `json:"commits"`
	// Checkpoints is how many checkpoint rounds the scenario took.
	Checkpoints int `json:"checkpoints"`
	// WALRecords / WALBytes are the surviving log footprint at crash
	// time (checkpoints truncate the log, so this is what replay pays).
	WALRecords int `json:"wal_records"`
	WALBytes   int `json:"wal_bytes"`
	// BaseLSN is the checkpoint LSN recovery started from.
	BaseLSN uint64 `json:"base_lsn"`
	// CheckpointRows / Replayed split the rebuild between snapshot rows
	// loaded and WAL records replayed.
	CheckpointRows int `json:"checkpoint_rows"`
	Replayed       int `json:"replayed_records"`
	// RecoveryUs is the virtual time the rebuild took (µs).
	RecoveryUs int64 `json:"recovery_us"`
	// DigestMatch reports whether the recovered state is row-for-row
	// identical to the pre-crash committed state.
	DigestMatch bool `json:"digest_match"`
}

// RestartBaseline is the committed BENCH_restart.json document.
type RestartBaseline struct {
	Schema string                 `json:"schema"`
	Mode   string                 `json:"mode"`
	Seed   int64                  `json:"seed"`
	Rows   map[string]*RestartRow `json:"rows"`
}

// restartScenario names one (log length, checkpoint cadence) point.
type restartScenario struct {
	name      string
	records   int
	ckptEvery int // 0: never checkpoint, replay the whole log
}

// restartScenarios picks the measured points for a mode. The uncheck-
// pointed points sweep log length (recovery time should scale with it);
// the checkpointed point proves a checkpoint bounds replay to the tail.
func restartScenarios(opts Options) []restartScenario {
	switch {
	case opts.Tiny:
		return []restartScenario{
			{"wal_64", 64, 0},
			{"wal_256", 256, 0},
			{"ckpt_256", 256, 64},
		}
	case opts.Quick:
		return []restartScenario{
			{"wal_256", 256, 0},
			{"wal_1024", 1024, 0},
			{"ckpt_1024", 1024, 256},
		}
	default:
		return []restartScenario{
			{"wal_512", 512, 0},
			{"wal_2048", 2048, 0},
			{"wal_8192", 8192, 0},
			{"ckpt_8192", 8192, 2048},
		}
	}
}

// restartDigest canonically hashes the store's committed state: every
// inode row (identity, link position, kind, size), sorted by ID. The
// recovered store matches the pre-crash store iff the digests match.
func restartDigest(db *ndb.DB) string {
	nodes, err := db.ListSubtree(namespace.RootID)
	if err != nil {
		return fmt.Sprintf("walk-failed: %v", err)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	h := sha256.New()
	for _, n := range nodes {
		fmt.Fprintf(h, "%d %d %q %v %d %d\n", n.ID, n.ParentID, n.Name, n.IsDir, n.Perm, n.Size)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// measureRestart runs one scenario: load the log, crash, recover. It
// runs on the discrete-event simulation clock so RecoveryTime is pure
// virtual time (per-record replay, checkpoint probes) and deterministic
// across runs — the regression gate depends on that.
func measureRestart(sc restartScenario) *RestartRow {
	clk := clock.NewSim()
	defer clk.Close()
	row := &RestartRow{Commits: sc.records}
	clock.Run(clk, func() {
		dur := ndb.NewDurable(clk, 4, lsm.DefaultConfig())
		cfg := ndb.DefaultConfig()
		cfg.Durable = dur
		cfg.Durability = ndb.DefaultDurabilityConfig()
		cfg.Durability.CheckpointEvery = 0 // the scenario drives checkpoints
		db := ndb.New(clk, cfg)

		dirID := db.NextID()
		tx := db.Begin("restart-bench")
		if err := tx.PutINode(&namespace.INode{
			ID: dirID, ParentID: namespace.RootID, Name: "bench",
			IsDir: true, Perm: namespace.PermDefaultDir,
		}); err != nil {
			panic(fmt.Sprintf("restart: mkdir /bench: %v", err))
		}
		if err := tx.Commit(); err != nil {
			panic(fmt.Sprintf("restart: commit /bench: %v", err))
		}
		for i := 0; i < sc.records-1; i++ {
			id := db.NextID()
			tx := db.Begin("restart-bench")
			if err := tx.PutINode(&namespace.INode{
				ID: id, ParentID: dirID, Name: fmt.Sprintf("f%06d", i),
				Perm: namespace.PermDefaultFile, Size: int64(i),
			}); err != nil {
				panic(fmt.Sprintf("restart: put f%06d: %v", i, err))
			}
			if err := tx.Commit(); err != nil {
				panic(fmt.Sprintf("restart: commit f%06d: %v", i, err))
			}
			if sc.ckptEvery > 0 && (i+2)%sc.ckptEvery == 0 {
				db.Checkpoint()
				row.Checkpoints++
			}
		}

		preDigest := restartDigest(db)
		row.WALRecords, row.WALBytes = dur.WALSize()

		// Crash: abandon the live store, rebuild from the media.
		recovered, stats, err := ndb.Recover(clk, cfg)
		if err != nil {
			panic(fmt.Sprintf("restart %s: recover: %v", sc.name, err))
		}
		row.BaseLSN = stats.BaseLSN
		row.CheckpointRows = stats.CheckpointRows
		row.Replayed = stats.ReplayedRecords
		row.RecoveryUs = stats.RecoveryTime.Microseconds()
		row.DigestMatch = restartDigest(recovered) == preDigest &&
			len(recovered.CheckIntegrity()) == 0
	})
	return row
}

// RestartMeasure runs all scenarios and returns the baseline document.
func RestartMeasure(opts Options) *RestartBaseline {
	b := &RestartBaseline{
		Schema: RestartSchema,
		Mode:   hotpathMode(opts),
		Seed:   opts.Seed,
		Rows:   map[string]*RestartRow{},
	}
	for _, sc := range restartScenarios(opts) {
		b.Rows[sc.name] = measureRestart(sc)
	}
	return b
}

// RunRestart renders the restart experiment: the recovery-cost sweep
// plus a seeded crash_restart episode battery.
func RunRestart(opts Options) []*Table {
	b := RestartMeasure(opts)
	t := &Table{
		ID:    "restart",
		Title: "Durability: crash-recovery cost vs WAL length and checkpoint cadence (virtual time)",
		Columns: []string{"scenario", "commits", "ckpts", "wal_recs", "wal_bytes",
			"base_lsn", "ckpt_rows", "replayed", "recovery", "digest"},
	}
	for _, sc := range restartScenarios(opts) {
		r := b.Rows[sc.name]
		match := "match"
		if !r.DigestMatch {
			match = "DIVERGED"
		}
		t.Rows = append(t.Rows, []string{
			sc.name,
			fmt.Sprintf("%d", r.Commits),
			fmt.Sprintf("%d", r.Checkpoints),
			fmt.Sprintf("%d", r.WALRecords),
			fmt.Sprintf("%d", r.WALBytes),
			fmt.Sprintf("%d", r.BaseLSN),
			fmt.Sprintf("%d", r.CheckpointRows),
			fmt.Sprintf("%d", r.Replayed),
			fmtDur(time.Duration(r.RecoveryUs) * time.Microsecond),
			match,
		})
	}
	t.Notes = append(t.Notes,
		"recovery time is virtual: checkpoint probes + per-record replay billed on the simulated clock, so the sweep is deterministic",
		"ckpt_* rows checkpoint on a cadence: replay covers only the records after the last complete round, bounding recovery regardless of history length")
	t.Fprint(opts.out())

	ep := &Table{
		ID:    "restart-episodes",
		Title: "Chaos crash_restart episodes: fault-flavoured crashes recover to the committed prefix",
		Columns: []string{"seed", "steps", "commits", "crashes", "ckpts",
			"replayed", "discarded", "violations"},
	}
	seeds := 6
	if opts.Quick {
		seeds = 4
	}
	if opts.Tiny {
		seeds = 2
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		cfg := chaos.DefaultCrashRestart(opts.Seed*1000 + seed)
		res := chaos.RunCrashRestart(cfg)
		ep.Rows = append(ep.Rows, []string{
			fmt.Sprintf("%d", res.Seed),
			fmt.Sprintf("%d", res.Steps),
			fmt.Sprintf("%d", res.Commits),
			fmt.Sprintf("%d", res.Crashes),
			fmt.Sprintf("%d", res.Checkpoints),
			fmt.Sprintf("%d", res.Replayed),
			fmt.Sprintf("%d", res.Discarded),
			fmt.Sprintf("%d", len(res.Violations)),
		})
		for _, v := range res.Violations {
			ep.Notes = append(ep.Notes, fmt.Sprintf("VIOLATION seed %d: %s", res.Seed, v))
		}
	}
	ep.Notes = append(ep.Notes,
		"each episode mixes clean kills, dropped WAL records, torn tails, and lost checkpoint rounds; every recovery must land digest-exact on the committed prefix",
		"replay any violation with `lambdafs-shell restart 1 <seed>`")
	ep.Fprint(opts.out())
	return []*Table{t, ep}
}

// WriteRestartBaseline measures and writes the baseline JSON to path.
func WriteRestartBaseline(path string, opts Options) error {
	b := RestartMeasure(opts)
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// restartRecoverySlackUs absorbs rounding on near-zero baselines; the
// relative gate is 10%, same as hotpath (virtual time is deterministic,
// so any honest regression is a code change, not noise).
const restartRecoverySlackUs = 50

// CheckRestartBaseline re-measures at the committed baseline's mode and
// fails when a scenario's recovered state diverges, its replayed-record
// or surviving-WAL-record counts drift from the baseline, or its
// recovery time regresses more than 10%.
func CheckRestartBaseline(path string, opts Options) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var committed RestartBaseline
	if err := json.Unmarshal(data, &committed); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	if committed.Schema != RestartSchema {
		return fmt.Errorf("baseline schema %q, want %q (regenerate with -restartbaseline)",
			committed.Schema, RestartSchema)
	}
	opts.Quick = committed.Mode == "quick"
	opts.Tiny = committed.Mode == "tiny"
	opts.Seed = committed.Seed
	cur := RestartMeasure(opts)
	var fails []string
	for _, sc := range restartScenarios(opts) {
		want, ok := committed.Rows[sc.name]
		if !ok {
			return fmt.Errorf("baseline %s lacks scenario %q (regenerate with -restartbaseline)",
				path, sc.name)
		}
		got := cur.Rows[sc.name]
		if !got.DigestMatch {
			fails = append(fails, fmt.Sprintf(
				"%s: recovered state diverged from the pre-crash committed state", sc.name))
		}
		if got.Replayed != want.Replayed || got.WALRecords != want.WALRecords {
			fails = append(fails, fmt.Sprintf(
				"%s: replayed/wal records %d/%d, baseline %d/%d (durability bookkeeping drifted)",
				sc.name, got.Replayed, got.WALRecords, want.Replayed, want.WALRecords))
		}
		if limit := want.RecoveryUs + want.RecoveryUs/10 + restartRecoverySlackUs; got.RecoveryUs > limit {
			fails = append(fails, fmt.Sprintf(
				"%s: recovery %dus > %dus (baseline %dus +10%% +%dus slack)",
				sc.name, got.RecoveryUs, limit, want.RecoveryUs, restartRecoverySlackUs))
		}
	}
	if len(fails) > 0 {
		return fmt.Errorf("restart recovery regression vs %s:\n  %s", path, joinLines(fails))
	}
	return nil
}
