package bench

import (
	"strconv"
	"testing"
)

// TestRunChaosExperiment runs the chaos experiment end-to-end at Tiny
// scale: every phase-A episode must pass all invariants with faults
// actually fired, the phase-B storm must keep serving ops and leave the
// store structurally clean, and episode digests must be reproducible.
func TestRunChaosExperiment(t *testing.T) {
	opts := Options{Tiny: true, Quick: true, Seed: 7}
	tables := RunChaos(opts)
	if len(tables) != 2 {
		t.Fatalf("tables = %d, want 2", len(tables))
	}

	episodes, storm := tables[0], tables[1]
	if episodes.ID != "chaos-episodes" || storm.ID != "chaos-storm" {
		t.Fatalf("table ids = %q, %q", episodes.ID, storm.ID)
	}
	col := func(tb *Table, name string) int {
		for i, c := range tb.Columns {
			if c == name {
				return i
			}
		}
		t.Fatalf("column %q missing from %v", name, tb.Columns)
		return -1
	}
	vIdx, fIdx, dIdx := col(episodes, "violations"), col(episodes, "faults_fired"), col(episodes, "digest")
	var totalFired int
	for _, row := range episodes.Rows {
		if row[vIdx] != "0" {
			t.Fatalf("episode seed %s reported %s violations", row[0], row[vIdx])
		}
		n, err := strconv.Atoi(row[fIdx])
		if err != nil {
			t.Fatalf("faults_fired %q: %v", row[fIdx], err)
		}
		totalFired += n
		if len(row[dIdx]) != 16 {
			t.Fatalf("digest cell %q", row[dIdx])
		}
	}
	if totalFired == 0 {
		t.Fatal("no faults fired across phase-A episodes")
	}

	// Replay mode: a fixed ChaosSeed reruns one episode with the same
	// digest as the sweep produced for it.
	replay := RunChaos(Options{Tiny: true, Quick: true, Seed: 7, ChaosSeed: 7})
	if len(replay) != 1 {
		t.Fatalf("replay tables = %d, want 1 (episodes only)", len(replay))
	}
	if got, want := replay[0].Rows[0][dIdx], episodes.Rows[0][dIdx]; got != want {
		t.Fatalf("replay digest %s != sweep digest %s", got, want)
	}

	metric := map[string]string{}
	for _, row := range storm.Rows {
		metric[row[0]] = row[1]
	}
	if metric["store_violations"] != "0" {
		t.Fatalf("storm left store violations: %s", metric["store_violations"])
	}
	for _, k := range []string{"warm_ops", "storm_ops", "drain_ops"} {
		n, err := strconv.Atoi(metric[k])
		if err != nil || n == 0 {
			t.Fatalf("%s = %q", k, metric[k])
		}
	}
	if metric["instance_kills"] == "0" {
		t.Fatal("storm killed no instances")
	}
}
