package bench

import (
	"reflect"
	"strconv"
	"testing"

	"lambdafs/internal/chaos"
)

// TestRunChaosExperiment runs the chaos experiment end-to-end at Tiny
// scale: every phase-A episode must pass all invariants with faults
// actually fired, the phase-B storm must keep serving ops and leave the
// store structurally clean, and episode digests must be reproducible.
func TestRunChaosExperiment(t *testing.T) {
	opts := Options{Tiny: true, Quick: true, Seed: 7}
	tables := RunChaos(opts)
	if len(tables) != 2 {
		t.Fatalf("tables = %d, want 2", len(tables))
	}

	episodes, storm := tables[0], tables[1]
	if episodes.ID != "chaos-episodes" || storm.ID != "chaos-storm" {
		t.Fatalf("table ids = %q, %q", episodes.ID, storm.ID)
	}
	col := func(tb *Table, name string) int {
		for i, c := range tb.Columns {
			if c == name {
				return i
			}
		}
		t.Fatalf("column %q missing from %v", name, tb.Columns)
		return -1
	}
	vIdx, fIdx, dIdx := col(episodes, "violations"), col(episodes, "faults_fired"), col(episodes, "digest")
	var totalFired int
	for _, row := range episodes.Rows {
		if row[vIdx] != "0" {
			t.Fatalf("episode seed %s reported %s violations", row[0], row[vIdx])
		}
		n, err := strconv.Atoi(row[fIdx])
		if err != nil {
			t.Fatalf("faults_fired %q: %v", row[fIdx], err)
		}
		totalFired += n
		if len(row[dIdx]) != 16 {
			t.Fatalf("digest cell %q", row[dIdx])
		}
	}
	if totalFired == 0 {
		t.Fatal("no faults fired across phase-A episodes")
	}

	// Replay mode: a fixed ChaosSeed reruns one episode with the same
	// digest as the sweep produced for it.
	replay := RunChaos(Options{Tiny: true, Quick: true, Seed: 7, ChaosSeed: 7})
	if len(replay) != 1 {
		t.Fatalf("replay tables = %d, want 1 (episodes only)", len(replay))
	}
	if got, want := replay[0].Rows[0][dIdx], episodes.Rows[0][dIdx]; got != want {
		t.Fatalf("replay digest %s != sweep digest %s", got, want)
	}

	metric := map[string]string{}
	for _, row := range storm.Rows {
		metric[row[0]] = row[1]
	}
	if metric["store_violations"] != "0" {
		t.Fatalf("storm left store violations: %s", metric["store_violations"])
	}
	for _, k := range []string{"warm_ops", "storm_ops", "drain_ops"} {
		n, err := strconv.Atoi(metric[k])
		if err != nil || n == 0 {
			t.Fatalf("%s = %q", k, metric[k])
		}
	}
	if metric["instance_kills"] == "0" {
		t.Fatal("storm killed no instances")
	}
}

// TestChaosStormSeedDeterminism pins the full-stack storm — including the
// newly seed-plumbed client RPC jitter (rpc.Config.Seed) — to Options.Seed:
// two runs with the same seed must produce byte-identical result tables.
func TestChaosStormSeedDeterminism(t *testing.T) {
	opts := Options{Tiny: true, Quick: true, Seed: 11}
	a := runChaosStorm(opts)
	b := runChaosStorm(opts)
	if !reflect.DeepEqual(a.Rows, b.Rows) {
		t.Fatalf("storm not deterministic for seed %d:\n run1: %v\n run2: %v",
			opts.Seed, a.Rows, b.Rows)
	}
}

// TestChaosEpisodeDigestMatchesLibrary pins the bench replay path to the
// chaos library: the digest the episodes table prints for a seed must be
// the digest chaos.RunEpisode computes for that seed directly.
func TestChaosEpisodeDigestMatchesLibrary(t *testing.T) {
	const seed = 42
	tb := runChaosEpisodes(Options{Tiny: true, Quick: true, Seed: seed, ChaosSeed: seed})
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(tb.Rows))
	}
	want := chaos.RunEpisode(chaos.DefaultEpisode(seed)).Digest[:16]
	got := tb.Rows[0][len(tb.Columns)-1]
	if got != want {
		t.Fatalf("bench digest %s != library digest %s", got, want)
	}
}
