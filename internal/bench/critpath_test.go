package bench

import (
	"fmt"
	"testing"

	"lambdafs/internal/clock"
	"lambdafs/internal/namespace"
	"lambdafs/internal/trace"
	"lambdafs/internal/workload"
)

// tracedDeepStatReport runs the deep_stat hot path (stats of files under a
// 10-deep directory chain) with tracing on and returns its critical-path
// report.
func tracedDeepStatReport(t *testing.T, serial bool) *trace.CritReport {
	t.Helper()
	clk := clock.NewSim()
	defer clk.Close()
	var c *hotpathCluster
	var tr *trace.Tracer
	var paths []string
	clock.Run(clk, func() {
		c = newHotpathCluster(clk, serial, 2)
		tr = trace.New(clk, trace.Config{})
		dir := ""
		var dirs []string
		for d := 0; d < 10; d++ {
			dir = fmt.Sprintf("%s/h%d", dir, d)
			dirs = append(dirs, dir)
		}
		for f := 0; f < 24; f++ {
			paths = append(paths, fmt.Sprintf("%s/f%02d", dir, f))
		}
		workload.PreloadNDB(c.db, dirs, paths)
	})
	clock.Run(clk, func() {
		for _, p := range paths {
			tc := tr.StartTrace("stat", p, "c0")
			resp := c.writer.Execute(namespace.Request{Op: namespace.OpStat, Path: p, TC: tc})
			tc.Finish(resp.Err)
			mustOK(resp, namespace.OpStat, p)
		}
	})
	return trace.CriticalPath(tr.Traces())
}

// TestDeepStatCriticalPathShift pins the headline behavior of the
// critical-path report on deep_stat. Serial and batched resolution spend
// identical virtual time in the store (one 300µs round trip + one 300µs
// service phase), so pure latency attribution cannot tell them apart; the
// resource ledgers can. Serial resolution's wire exchange carries the
// whole dependent-hop chain (hops and row materializations bill to
// ndb.rtt), so the round trip ranks first; batched resolution collapses
// the exchange to one hop and moves the row materialization into the
// per-shard service phase, so ndb.service takes over the top slot.
func TestDeepStatCriticalPathShift(t *testing.T) {
	top := func(r *trace.CritReport, cohort string) *trace.CritKind {
		t.Helper()
		op := r.Op("stat")
		if op == nil {
			t.Fatal("no stat traces in report")
		}
		co := op.P99
		if cohort == "p50" {
			co = op.P50
		}
		ranked := co.Ranked()
		if len(ranked) == 0 {
			t.Fatalf("%s cohort has no contributors", cohort)
		}
		return ranked[0]
	}

	serial := tracedDeepStatReport(t, true)
	for _, cohort := range []string{"p50", "p99"} {
		got := top(serial, cohort)
		if got.Kind != trace.KindStoreRTT {
			t.Errorf("serial %s top contributor = %s, want %s (NDB wire exchange carries the resolve chain)",
				cohort, got.Kind, trace.KindStoreRTT)
		}
		if got.Res.StoreHops == 0 {
			t.Errorf("serial %s top contributor has no store hops in its ledger", cohort)
		}
	}

	batched := tracedDeepStatReport(t, false)
	for _, cohort := range []string{"p50", "p99"} {
		got := top(batched, cohort)
		if got.Kind != trace.KindStoreService {
			t.Errorf("batched %s top contributor = %s, want %s (rows materialize in the per-shard service phase)",
				cohort, got.Kind, trace.KindStoreService)
		}
	}

	// The shift is a ledger effect, not a latency effect: both modes put
	// the same virtual time on the store round trip and the service phase.
	sst := serial.Op("stat")
	bst := batched.Op("stat")
	if sst.P50.Kind(trace.KindStoreRTT).PathTotal != bst.P50.Kind(trace.KindStoreRTT).PathTotal {
		t.Errorf("rtt path time differs between modes: serial %v, batched %v",
			sst.P50.Kind(trace.KindStoreRTT).PathTotal, bst.P50.Kind(trace.KindStoreRTT).PathTotal)
	}
}
