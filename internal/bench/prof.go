package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"
)

// Host-runtime profiling for the experiments. The simulation's latencies
// are virtual, but its cost on the host — CPU, allocations, scheduler
// contention — is real and is what the allocs/op regression gate and the
// zero-allocation roadmap item need to see. Profile runs one experiment
// under the Go runtime profilers and writes standard pprof files, so
// `go tool pprof` works on them directly.
//
// The mutex and block profilers are sampled globally by the runtime, so
// their rates are raised only for the duration of the profiled run and
// restored after (mutex to its previous fraction, block back to off) —
// profiling one experiment must not change the cost of the next.

// profileSuffixes names the files Profile writes for a given experiment,
// in the order written. check.sh's profiling smoke step keys on these.
var profileSuffixes = []string{".cpu.pprof", ".heap.pprof", ".mutex.pprof", ".block.pprof"}

// Profile runs fn with CPU, mutex, and block profiling enabled and then
// snapshots the heap (after a GC, so live objects are measured rather
// than garbage). Profiles are written to dir/<name><suffix> for each
// entry of profileSuffixes. It returns fn's host wall-clock runtime.
func Profile(dir, name string, fn func()) (time.Duration, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	cpuF, err := os.Create(filepath.Join(dir, name+".cpu.pprof"))
	if err != nil {
		return 0, err
	}
	defer cpuF.Close()

	prevMutex := runtime.SetMutexProfileFraction(1)
	runtime.SetBlockProfileRate(1)
	defer func() {
		runtime.SetMutexProfileFraction(prevMutex)
		runtime.SetBlockProfileRate(0)
	}()

	if err := pprof.StartCPUProfile(cpuF); err != nil {
		return 0, err
	}
	elapsed := hostDuration(fn)
	pprof.StopCPUProfile()

	runtime.GC()
	for _, p := range []string{"heap", "mutex", "block"} {
		f, err := os.Create(filepath.Join(dir, name+"."+p+".pprof"))
		if err != nil {
			return elapsed, err
		}
		prof := pprof.Lookup(p)
		if prof == nil {
			_ = f.Close()
			return elapsed, fmt.Errorf("runtime profile %q unavailable", p)
		}
		if err := prof.WriteTo(f, 0); err != nil {
			_ = f.Close()
			return elapsed, err
		}
		if err := f.Close(); err != nil {
			return elapsed, err
		}
	}
	return elapsed, nil
}

// hostDuration runs fn and returns its host wall-clock runtime: how long
// the machine took to execute the profiled simulation, which is
// inherently a wall-clock quantity (the profiles themselves are sampled
// on host time) and never feeds back into any simulated latency.
func hostDuration(fn func()) time.Duration {
	start := time.Now() //vet:allow virtualtime measures host runtime of the profiled run, not simulated latency
	fn()
	return time.Since(start) //vet:allow virtualtime host-runtime measurement is genuinely wall-clock
}
