package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"lambdafs/internal/clock"
	"lambdafs/internal/namespace"
	"lambdafs/internal/trace"
	"lambdafs/internal/workload"
)

// RunTrace runs the observability experiment: a traced λFS deployment
// through three phases — a warm mixed workload, an instance-kill storm
// (cold starts, retries, anti-thrashing), and an idle window (reclamation)
// — then renders the per-op-type latency decomposition, the
// critical-path/resource-attribution report, and the structured event
// log. With Options.TraceDir set, the raw traces and events are dumped
// as JSONL for external tooling.
func RunTrace(opts Options) []*Table {
	clk := clock.NewSim()
	defer clk.Close()

	tr := trace.New(clk, trace.Config{})
	p := defaultLambdaParams()
	p.seed = opts.Seed
	p.clientVMs = 2
	p.tracer = tr

	d, f := microTreeShape(opts)
	dirs, files := workload.GenerateNamespace(d, f)
	var c *lambdaCluster
	clock.Run(clk, func() {
		c = newLambdaCluster(clk, p)
		workload.PreloadNDB(c.db, dirs, files)
	})
	defer func() { clock.Run(clk, c.close) }()

	clients, per := 32, 192
	if opts.Tiny {
		clients, per = 8, 64
	} else if opts.Quick {
		clients, per = 16, 96
	}
	// Write-heavier than Spotify so create/mv decompositions have enough
	// samples to report.
	mix := workload.Mix{
		{Op: namespace.OpCreate, Weight: 12},
		{Op: namespace.OpMv, Weight: 6},
		{Op: namespace.OpDelete, Weight: 2},
		{Op: namespace.OpRead, Weight: 35},
		{Op: namespace.OpStat, Weight: 35},
		{Op: namespace.OpLs, Weight: 10},
	}
	tree := workload.NewTree(dirs, files)
	fss := make([]workload.FS, clients)
	for i := range fss {
		fss[i] = c.clientFor(i)
	}
	cached := func(i int) workload.FS { return fss[i] }

	// Phase 1 — warm: connections established, instances provisioned,
	// latency windows filled.
	clock.Run(clk, func() {
		workload.RunClosedLoop(clk, tree, mix, clients, per, opts.Seed, cached)
	})

	// Phase 2 — kill storm: dead connections force HTTP failover through
	// fresh cold starts; the latency spikes push clients into
	// anti-thrashing mode.
	clock.Run(clk, func() {
		for i := 0; i < 4; i++ {
			c.platform.KillOneInstance(i % p.deployments)
		}
		workload.RunClosedLoop(clk, tree, mix, clients, per/2, opts.Seed+1, cached)
		// Outlive the anti-thrashing hold, then issue a few more ops so
		// the (lazy) exit events are observed and recorded.
		clk.Sleep(c.rpcCfg.AntiThrashHold + time.Second)
		workload.RunClosedLoop(clk, tree, mix, clients, 8, opts.Seed+2, cached)
	})

	// Phase 3 — idle: instances pass the idle-reclaim threshold and the
	// platform scales in.
	clock.Run(clk, func() {
		clk.Sleep(45 * time.Second)
	})

	bd := trace.Aggregate(tr.Traces())
	cp := trace.CriticalPath(tr.Traces())
	tables := []*Table{BreakdownTable(bd), CriticalPathTable(cp), eventTable(tr)}
	for _, t := range tables {
		t.Fprint(opts.out())
	}
	if opts.TraceDir != "" {
		if err := dumpTraceJSONL(tr, opts.TraceDir); err != nil {
			fmt.Fprintf(opts.out(), "trace dump failed: %v\n", err)
		}
	}
	return tables
}

// BreakdownTable renders a latency decomposition with a stable column
// order: fixed end-to-end columns first, then a (mean µs, % of latency)
// pair per span kind in trace.KindOrder. The order is part of the CSV
// contract (see TestBreakdownTableGolden).
func BreakdownTable(b *trace.Breakdown) *Table {
	kinds := b.KindsPresent()
	cols := []string{"op", "count", "mean_us", "p50_us", "p99_us", "attributed_pct"}
	for _, k := range kinds {
		cols = append(cols, string(k)+"_mean_us", string(k)+"_pct")
	}
	t := &Table{
		ID:      "trace-breakdown",
		Title:   "Per-op latency decomposition by span kind (self time)",
		Columns: cols,
	}
	for _, op := range b.OpNames() {
		o := b.Op(op)
		row := []string{
			op,
			fmt.Sprintf("%d", o.Count),
			fmt.Sprintf("%d", o.E2E.Mean().Microseconds()),
			fmt.Sprintf("%d", o.E2E.Quantile(0.5).Microseconds()),
			fmt.Sprintf("%d", o.E2E.Quantile(0.99).Microseconds()),
			fmt.Sprintf("%.1f", 100*o.AttributedFraction()),
		}
		for _, k := range kinds {
			ks := o.Kind(k)
			if ks == nil {
				row = append(row, "0", "0.0")
				continue
			}
			mean := time.Duration(int64(ks.Total) / int64(o.Count))
			row = append(row,
				fmt.Sprintf("%d", mean.Microseconds()),
				fmt.Sprintf("%.1f", 100*o.MeanShare(k)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// eventTable summarizes the structured event stream.
func eventTable(tr *trace.Tracer) *Table {
	t := &Table{
		ID:      "trace-events",
		Title:   "Structured platform/client events (virtual time)",
		Columns: []string{"event", "count", "first", "last"},
	}
	for _, typ := range []trace.EventType{
		trace.EventColdStart, trace.EventReclaim, trace.EventEvict,
		trace.EventKill, trace.EventHTTPReplace, trace.EventRetry,
		trace.EventHedgedRetry, trace.EventAntiThrashEnter,
		trace.EventAntiThrashExit, trace.EventCoherenceINV,
		trace.EventSubtreeOffload,
	} {
		evs := tr.EventsOf(typ)
		if len(evs) == 0 {
			continue
		}
		first := evs[0].Time.Sub(clock.Epoch)
		last := evs[len(evs)-1].Time.Sub(clock.Epoch)
		t.Rows = append(t.Rows, []string{
			string(typ), fmt.Sprintf("%d", len(evs)),
			fmt.Sprintf("t+%s", fmtDur(first)), fmt.Sprintf("t+%s", fmtDur(last)),
		})
	}
	return t
}

// dumpTraceJSONL writes the raw traces and events to dir/trace.jsonl.
func dumpTraceJSONL(tr *trace.Tracer, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, "trace.jsonl"))
	if err != nil {
		return err
	}
	defer f.Close()
	return tr.WriteJSONL(f)
}
