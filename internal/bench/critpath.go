package bench

import (
	"fmt"
	"time"

	"lambdafs/internal/trace"
)

// critPathTopN bounds the contributors printed per (op, cohort). The full
// ranking is in the CritReport; the table shows the head plus the
// untraced remainder so nothing is silently dropped from the accounting.
const critPathTopN = 5

// CriticalPathTable renders a trace.CritReport: for each op's p50 and p99
// cohorts, the top span kinds by critical-path time with their resource
// ledgers, all as per-trace means. path_pct values within one cohort sum
// (with the untraced row) to 100 by construction — the critical-path walk
// attributes every instant of the end-to-end window exactly once.
func CriticalPathTable(r *trace.CritReport) *Table {
	t := &Table{
		ID:    "trace-critpath",
		Title: "Critical-path contributors to p50/p99 with resource ledgers (per-trace means)",
		Columns: []string{"op", "cohort", "rank", "kind", "path_us", "path_pct",
			"spans", "allocs", "hops", "lockwait_us", "inv", "wire_b"},
	}
	for _, op := range r.OpNames() {
		o := r.Op(op)
		for _, co := range []*trace.CritCohort{o.P50, o.P99} {
			if co == nil || co.Traces == 0 {
				continue
			}
			n := float64(co.Traces)
			e2e := float64(co.E2ETotal)
			pct := func(d time.Duration) string {
				if e2e <= 0 {
					return "0.0"
				}
				return fmt.Sprintf("%.1f", 100*float64(d)/e2e)
			}
			for i, ck := range co.Ranked() {
				if i >= critPathTopN {
					break
				}
				t.Rows = append(t.Rows, []string{
					op, co.Name, fmt.Sprintf("%d", i+1), string(ck.Kind),
					fmt.Sprintf("%d", time.Duration(float64(ck.PathTotal)/n).Microseconds()),
					pct(ck.PathTotal),
					fmt.Sprintf("%.1f", float64(ck.Spans)/n),
					fmt.Sprintf("%.1f", float64(ck.Res.Allocs)/n),
					fmt.Sprintf("%.1f", float64(ck.Res.StoreHops)/n),
					fmt.Sprintf("%.1f", float64(ck.Res.LockWaitNS)/1e3/n),
					fmt.Sprintf("%.1f", float64(ck.Res.INVTargets)/n),
					fmt.Sprintf("%.0f", float64(ck.Res.WireBytes)/n),
				})
			}
			t.Rows = append(t.Rows, []string{
				op, co.Name, "", "(untraced)",
				fmt.Sprintf("%d", time.Duration(float64(co.Unattributed)/n).Microseconds()),
				pct(co.Unattributed),
				"", "", "", "", "", "",
			})
		}
	}
	t.Notes = append(t.Notes,
		"path_us is the mean time the client actually waited on the kind (critical path), not self time; per cohort the path_pct column sums to 100 with the untraced row",
		"resource columns (allocs, hops, lockwait_us, inv, wire_b) sum over ALL spans of the kind, on or off the path — parallel branches still bill",
		"ties in path_us rank the kind with the denser ledger first (allocs, then hops): equal-time contributors are told apart by what they materialize")
	return t
}
