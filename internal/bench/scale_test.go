package bench

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestScalePointDeterminism pins the bit-determinism claim the baseline
// gate rests on: the same (point, seed) must reproduce the exact event
// stream, and a different seed must not.
func TestScalePointDeterminism(t *testing.T) {
	pt := scalePoint{clients: 2_000, seconds: 2}
	a := runScalePoint(pt, 1)
	b := runScalePoint(pt, 1)
	if a.digest != b.digest {
		t.Fatalf("same seed diverged: digest %016x vs %016x", a.digest, b.digest)
	}
	if a.ops != b.ops || a.throttled != b.throttled {
		t.Fatalf("same seed diverged: ops/throttled %d/%d vs %d/%d",
			a.ops, a.throttled, b.ops, b.throttled)
	}
	if a.p50 != b.p50 || a.p99 != b.p99 {
		t.Fatalf("same seed diverged: p50/p99 %v/%v vs %v/%v",
			a.p50, a.p99, b.p50, b.p99)
	}
	c := runScalePoint(pt, 2)
	if c.digest == a.digest {
		t.Fatalf("different seeds produced the same digest %016x", a.digest)
	}
}

// TestScaleMeasureTiny checks the model's physics at tiny scale: every
// point produces work, admission visibly throttles the underprovisioned
// crawler class, and the digest is populated.
func TestScaleMeasureTiny(t *testing.T) {
	b, results := ScaleMeasure(Options{Tiny: true, Seed: 1, Out: io.Discard})
	if b.Schema != ScaleSchema {
		t.Fatalf("schema %q, want %q", b.Schema, ScaleSchema)
	}
	if b.Mode != "tiny" {
		t.Fatalf("mode %q, want tiny", b.Mode)
	}
	if len(b.Rows) != len(results) || len(results) == 0 {
		t.Fatalf("rows/results %d/%d", len(b.Rows), len(results))
	}
	for key, row := range b.Rows {
		if row.Ops == 0 {
			t.Errorf("%s: no ops completed", key)
		}
		if row.Digest == "" || row.Digest == "0000000000000000" {
			t.Errorf("%s: empty scheduler digest %q", key, row.Digest)
		}
		if row.P99Us < row.P50Us {
			t.Errorf("%s: p99 %dus below p50 %dus", key, row.P99Us, row.P50Us)
		}
	}
	// The crawler class is provisioned below its demand by design; if
	// nothing throttles, admission control is not in the request path.
	last := results[len(results)-1]
	if last.throttled == 0 {
		t.Errorf("largest point recorded zero throttles — admission control inert")
	}
	var crawler *scaleTenantStat
	for i := range last.tenants {
		if last.tenants[i].name == "crawler" {
			crawler = &last.tenants[i]
		}
	}
	if crawler == nil {
		t.Fatalf("crawler tenant missing from per-tenant stats")
	}
	if crawler.throttled == 0 {
		t.Errorf("crawler throttled 0 of %d ops; want the underprovisioned class to be clipped",
			crawler.admitted)
	}
}

// TestScaleBaselineRoundTrip writes a tiny baseline and immediately
// re-checks it: a freshly measured baseline must hold.
func TestScaleBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scale.json")
	opts := Options{Tiny: true, Seed: 1, Out: io.Discard}
	if err := WriteScaleBaseline(path, opts); err != nil {
		t.Fatalf("write baseline: %v", err)
	}
	if err := CheckScaleBaseline(path, opts); err != nil {
		t.Fatalf("fresh baseline did not hold: %v", err)
	}
}

// TestScaleBaselineCatchesDrift is the sabotage proof for the gate:
// corrupting any committed invariant must fail the check.
func TestScaleBaselineCatchesDrift(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scale.json")
	opts := Options{Tiny: true, Seed: 1, Out: io.Discard}
	if err := WriteScaleBaseline(path, opts); err != nil {
		t.Fatalf("write baseline: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read baseline: %v", err)
	}
	var b ScaleBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatalf("parse baseline: %v", err)
	}
	sabotage := map[string]func(r *ScaleRow){
		"ops":    func(r *ScaleRow) { r.Ops++ },
		"digest": func(r *ScaleRow) { r.Digest = "deadbeefdeadbeef" },
		"p99":    func(r *ScaleRow) { r.P99Us += 17 },
		"shards": func(r *ScaleRow) { r.Shards++ },
	}
	for name, corrupt := range sabotage {
		mutated := ScaleBaseline{Schema: b.Schema, Mode: b.Mode, Seed: b.Seed,
			Rows: make(map[string]*ScaleRow, len(b.Rows))}
		for key, row := range b.Rows {
			cp := *row
			mutated.Rows[key] = &cp
		}
		for _, row := range mutated.Rows {
			corrupt(row)
			break
		}
		out, err := json.Marshal(&mutated)
		if err != nil {
			t.Fatalf("marshal mutated baseline: %v", err)
		}
		mpath := filepath.Join(t.TempDir(), name+".json")
		if err := os.WriteFile(mpath, out, 0o644); err != nil {
			t.Fatalf("write mutated baseline: %v", err)
		}
		if err := CheckScaleBaseline(mpath, opts); err == nil {
			t.Errorf("%s corruption went undetected", name)
		} else if !strings.Contains(err.Error(), "scale baseline") &&
			!strings.Contains(err.Error(), "baseline") {
			t.Errorf("%s corruption produced an unhelpful error: %v", name, err)
		}
	}
}

// TestScaleBaselineRejectsBadSchema checks the regenerate hint on a
// schema mismatch.
func TestScaleBaselineRejectsBadSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scale.json")
	doc := `{"schema":"lambdafs-scale-baseline/v0","mode":"tiny","seed":1,"rows":{}}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	err := CheckScaleBaseline(path, Options{Tiny: true, Seed: 1})
	if err == nil {
		t.Fatalf("stale schema accepted")
	}
	if !strings.Contains(err.Error(), "-scalebaseline") {
		t.Fatalf("error lacks the regenerate hint: %v", err)
	}
}
