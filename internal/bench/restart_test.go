package bench

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeRestartBaselineFile(t *testing.T, b *RestartBaseline) string {
	t.Helper()
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		t.Fatalf("marshal baseline: %v", err)
	}
	path := filepath.Join(t.TempDir(), "restart.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatalf("write baseline: %v", err)
	}
	return path
}

func cloneRestartBaseline(t *testing.T, b *RestartBaseline) *RestartBaseline {
	t.Helper()
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var out RestartBaseline
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	return &out
}

// TestRestartMeasure pins the experiment's physics at tiny scale: every
// scenario recovers digest-exact; the uncheckpointed scenarios replay
// exactly their log; the checkpointed scenario's replay is bounded by
// the cadence and its recovery starts from a non-zero base LSN.
func TestRestartMeasure(t *testing.T) {
	opts := Options{Tiny: true, Seed: 1, Out: io.Discard}
	b := RestartMeasure(opts)
	for _, sc := range restartScenarios(opts) {
		r := b.Rows[sc.name]
		if r == nil {
			t.Fatalf("scenario %s missing from measurement", sc.name)
		}
		if !r.DigestMatch {
			t.Errorf("%s: recovered state diverged", sc.name)
		}
		if sc.ckptEvery == 0 {
			if r.Replayed != sc.records || r.WALRecords != sc.records {
				t.Errorf("%s: replayed/wal %d/%d, want %d/%d",
					sc.name, r.Replayed, r.WALRecords, sc.records, sc.records)
			}
		} else {
			if r.BaseLSN == 0 {
				t.Errorf("%s: checkpointed scenario recovered from base LSN 0", sc.name)
			}
			if r.Replayed >= sc.ckptEvery {
				t.Errorf("%s: replayed %d records, cadence %d should bound the tail",
					sc.name, r.Replayed, sc.ckptEvery)
			}
		}
	}
	small, large := b.Rows["wal_64"], b.Rows["wal_256"]
	if large.RecoveryUs <= small.RecoveryUs {
		t.Errorf("recovery time did not grow with log length: %dus (256) <= %dus (64)",
			large.RecoveryUs, small.RecoveryUs)
	}
}

// TestRestartBaselineGate drives CheckRestartBaseline three ways: an
// honest baseline passes, a deflated recovery-time fixture fails
// mentioning recovery, and a stale schema is rejected.
func TestRestartBaselineGate(t *testing.T) {
	opts := Options{Tiny: true, Seed: 1, Out: io.Discard}
	cur := RestartMeasure(opts)

	t.Run("honest baseline passes", func(t *testing.T) {
		path := writeRestartBaselineFile(t, cur)
		if err := CheckRestartBaseline(path, Options{Out: io.Discard}); err != nil {
			t.Fatalf("honest baseline failed the gate: %v", err)
		}
	})

	t.Run("deflated recovery fixture fails", func(t *testing.T) {
		regressed := cloneRestartBaseline(t, cur)
		// A committed baseline claiming a much faster recovery makes the
		// current honest measurement look like a regression.
		regressed.Rows["wal_256"].RecoveryUs /= 10
		path := writeRestartBaselineFile(t, regressed)
		err := CheckRestartBaseline(path, Options{Out: io.Discard})
		if err == nil {
			t.Fatal("deflated recovery baseline passed the gate")
		}
		if !strings.Contains(err.Error(), "recovery") {
			t.Fatalf("gate failure does not mention recovery: %v", err)
		}
	})

	t.Run("replay drift fails", func(t *testing.T) {
		drifted := cloneRestartBaseline(t, cur)
		drifted.Rows["wal_256"].Replayed--
		path := writeRestartBaselineFile(t, drifted)
		err := CheckRestartBaseline(path, Options{Out: io.Discard})
		if err == nil || !strings.Contains(err.Error(), "replayed") {
			t.Fatalf("replayed-record drift not caught: %v", err)
		}
	})

	t.Run("stale schema rejected", func(t *testing.T) {
		stale := cloneRestartBaseline(t, cur)
		stale.Schema = "lambdafs-restart-baseline/v0"
		path := writeRestartBaselineFile(t, stale)
		err := CheckRestartBaseline(path, Options{Out: io.Discard})
		if err == nil || !strings.Contains(err.Error(), "schema") {
			t.Fatalf("stale schema not rejected: %v", err)
		}
	})
}
