package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSLOExperiment runs the slo experiment at tiny scale with SLODir
// set (the library form of `lambdafs-bench -slo DIR`) and checks both
// phases: the coverage battery must be violation-free with every
// family's must-fire alert in its fired set, and the live run must
// leave parseable artifacts with the default rule pack registered.
func TestSLOExperiment(t *testing.T) {
	dir := t.TempDir()
	opts := tinyOpts()
	opts.Tiny = true
	opts.SLODir = dir
	tables := RunSLO(opts)
	if len(tables) != 2 {
		t.Fatalf("RunSLO returned %d tables, want 2", len(tables))
	}
	coverage, live := tables[0], tables[1]

	for _, row := range coverage.Rows {
		if row[5] != "0" {
			t.Errorf("coverage row %v reports violations", row)
		}
		if row[3] == "[]" {
			t.Errorf("family %s fired nothing", row[0])
		}
	}
	for _, note := range coverage.Notes {
		if strings.Contains(note, "VIOLATION") {
			t.Errorf("coverage note: %s", note)
		}
	}

	// The live table carries one row per default rule, each in a legal
	// state.
	if len(live.Rows) != 6 {
		t.Fatalf("live table has %d rules, want the 6 of the default pack", len(live.Rows))
	}
	for _, row := range live.Rows {
		switch row[2] {
		case "inactive", "pending", "firing":
		default:
			t.Errorf("rule %s in unknown state %q", row[0], row[2])
		}
	}

	raw, err := os.ReadFile(filepath.Join(dir, "slo-coverage.json"))
	if err != nil {
		t.Fatalf("coverage artifact: %v", err)
	}
	var results []struct {
		Family string
		Fired  []string
		Digest string
	}
	if err := json.Unmarshal(raw, &results); err != nil {
		t.Fatalf("coverage artifact is not JSON: %v", err)
	}
	if len(results) != 5 {
		t.Fatalf("coverage artifact has %d episodes, want 5 (one per family at tiny scale)", len(results))
	}
	for _, r := range results {
		if len(r.Fired) == 0 || len(r.Digest) != 64 {
			t.Errorf("episode %+v incomplete", r)
		}
	}

	if _, err := os.Stat(filepath.Join(dir, "slo-alerts.jsonl")); err != nil {
		t.Errorf("alert log artifact: %v", err)
	}
	prom, err := os.ReadFile(filepath.Join(dir, "slo-live.prom"))
	if err != nil {
		t.Fatalf("live prometheus dump: %v", err)
	}
	if !strings.Contains(string(prom), "lambdafs_slo_rules 6") {
		t.Error("live registry does not report the 6 default rules")
	}
	if !strings.Contains(string(prom), `lambdafs_slo_firing{rule="inv_latency_p99"}`) {
		t.Error("live registry missing per-rule firing gauges")
	}
}
