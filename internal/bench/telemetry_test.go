package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestMetricsArtifacts runs a miniature Spotify experiment with
// MetricsDir set (the library form of `lambdafs-bench -metrics DIR`) and
// checks both artifacts: the Prometheus text dump must cover every
// instrumented subsystem, and the scraped snapshot series must be
// chronologically ordered virtual-time samples in which the hot-path
// counters actually advance.
func TestMetricsArtifacts(t *testing.T) {
	dir := t.TempDir()
	opts := tinyOpts()
	opts.MetricsDir = dir
	sp := spotifyParams{
		base: 2000, duration: 5 * time.Second, interval: 5 * time.Second,
		targets: []float64{2000}, clients: 32, dirs: 16, files: 50,
	}
	run := runSpotifyLambda(opts, sp, "λFS", -1, 256, 6, 0)
	if run.rec.Completed.Load() == 0 {
		t.Fatal("no operations completed")
	}

	prom, err := os.ReadFile(filepath.Join(dir, "spotify-fs.prom"))
	if err != nil {
		t.Fatalf("prometheus dump: %v", err)
	}
	for _, prefix := range []string{
		"lambdafs_ndb_", "lambdafs_faas_", "lambdafs_rpc_",
		"lambdafs_core_", "lambdafs_coordinator_", "lambdafs_cost_",
	} {
		if !strings.Contains(string(prom), prefix) {
			t.Errorf("prometheus dump has no %s* instruments", prefix)
		}
	}
	if !strings.Contains(string(prom), "# TYPE ") {
		t.Error("prometheus dump missing TYPE headers")
	}

	raw, err := os.ReadFile(filepath.Join(dir, "spotify-fs-snapshots.json"))
	if err != nil {
		t.Fatalf("snapshot series: %v", err)
	}
	var snaps []struct {
		TUS    int64              `json:"t_us"`
		Values map[string]float64 `json:"values"`
	}
	if err := json.Unmarshal(raw, &snaps); err != nil {
		t.Fatalf("snapshot series is not JSON: %v", err)
	}
	if len(snaps) < 3 {
		t.Fatalf("only %d snapshots for a %v run", len(snaps), sp.duration)
	}
	// Non-decreasing, not strictly increasing: the end-of-run ScrapeNow
	// shares the final tick's virtual timestamp.
	for i := 1; i < len(snaps); i++ {
		if snaps[i].TUS < snaps[i-1].TUS {
			t.Fatalf("snapshots not chronologically ordered: t_us %d after %d",
				snaps[i].TUS, snaps[i-1].TUS)
		}
	}
	if snaps[len(snaps)-1].TUS <= snaps[0].TUS {
		t.Fatal("snapshot series spans no virtual time")
	}
	first, last := snaps[0].Values, snaps[len(snaps)-1].Values
	for _, key := range []string{
		"lambdafs_faas_invocations_total",
		"lambdafs_ndb_tx_commits_total",
	} {
		if last[key] <= first[key] || last[key] == 0 {
			t.Errorf("series %s did not advance: first=%v last=%v", key, first[key], last[key])
		}
	}
	if last["lambdafs_faas_active_instances"] <= 0 {
		t.Error("no active NameNodes in the final snapshot")
	}
	if last["lambdafs_cost_payperuse_usd"] <= 0 {
		t.Error("pay-per-use cost gauge never accrued")
	}
}
