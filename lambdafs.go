// Package lambdafs is a from-scratch Go reproduction of λFS, the
// serverless-function-based, elastic distributed file system metadata
// service of Carver et al. (ASPLOS '23), together with every substrate its
// evaluation depends on: an OpenWhisk-like FaaS platform, a MySQL-Cluster-
// NDB-like transactional metadata store, a ZooKeeper-like coordinator,
// DataNodes, and the HopsFS / HopsFS+Cache / InfiniCache / CephFS /
// IndexFS baselines.
//
// The package runs entirely in-process on a virtual clock: a Cluster is a
// complete λFS deployment (store, coordinator, FaaS platform, n NameNode
// deployments), and Clients issue metadata operations through the paper's
// hybrid HTTP/TCP RPC client library. See DESIGN.md for the architecture
// and EXPERIMENTS.md for the reproduced evaluation.
//
//	cfg := lambdafs.DefaultConfig()
//	cluster, _ := lambdafs.NewCluster(cfg)
//	defer cluster.Close()
//	client := cluster.NewClient("app-1")
//	client.MkdirAll("/data/logs")
//	client.Create("/data/logs/day1.log")
//	entries, _ := client.List("/data/logs")
package lambdafs

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"lambdafs/internal/clock"
	"lambdafs/internal/coordinator"
	"lambdafs/internal/core"
	"lambdafs/internal/faas"
	"lambdafs/internal/metrics"
	"lambdafs/internal/ndb"
	"lambdafs/internal/rpc"
	"lambdafs/internal/telemetry"
	"lambdafs/internal/trace"
)

// CoordinatorKind selects the pluggable Coordinator backend (§3.1).
type CoordinatorKind string

// Supported coordinator backends.
const (
	CoordinatorZooKeeper CoordinatorKind = "zookeeper"
	CoordinatorNDB       CoordinatorKind = "ndb"
)

// Config assembles a λFS cluster. Zero values fall back to the defaults
// of DefaultConfig.
type Config struct {
	// Deployments is n, the number of serverless NameNode deployments
	// the namespace is consistently hashed across (§3.3).
	Deployments int
	// NameNodeVCPU / NameNodeRAMGB shape each serverless NameNode.
	NameNodeVCPU  float64
	NameNodeRAMGB float64
	// ConcurrencyLevel is the per-instance HTTP concurrency (§3.4).
	ConcurrencyLevel int
	// MaxInstancesPerDeployment caps intra-deployment auto-scaling
	// (0 = unlimited; 1 reproduces the "no auto-scaling" ablation).
	MaxInstancesPerDeployment int
	// CacheBudgetBytes bounds each NameNode's metadata cache
	// (0 = unlimited).
	CacheBudgetBytes int64

	// Platform shapes the FaaS substrate (resource pool, cold starts,
	// gateway latency, reclamation).
	Platform faas.Config
	// Store shapes the NDB-like persistent metadata store.
	Store ndb.Config
	// RPC shapes the hybrid HTTP/TCP client library (§3.2, Appendices
	// B-C).
	RPC rpc.Config
	// Coordinator selects the coordination backend.
	Coordinator CoordinatorKind
	// CoordinatorHop is the coordinator's one-way message latency.
	CoordinatorHop time.Duration
	// Engine tunes NameNode execution (CPU per op, subtree batching…).
	Engine core.EngineConfig

	// TimeScale selects the clock: 0 (default) runs on the
	// discrete-event simulation clock (fast, exact virtual latencies);
	// a positive value maps one virtual second onto TimeScale real
	// seconds.
	TimeScale float64

	// EnableTracing turns on the virtual-time distributed tracer: every
	// request carries a trace context through the RPC fabric, FaaS
	// platform, NameNode engine, and store, and platform/client lifecycle
	// transitions are recorded as structured events. Off by default (the
	// nil-context fast path costs nothing per request).
	EnableTracing bool
	// Trace tunes the tracer (sampling, retention caps) when
	// EnableTracing is set; zero values use trace.DefaultConfig.
	Trace trace.Config
}

// DefaultConfig mirrors the paper's standard deployment: 16 deployments
// of 6.25-vCPU/30-GB NameNodes over a 4-data-node NDB cluster with a
// ZooKeeper coordinator.
func DefaultConfig() Config {
	return Config{
		Deployments:      16,
		NameNodeVCPU:     6.25,
		NameNodeRAMGB:    30,
		ConcurrencyLevel: 4,
		Platform:         faas.DefaultConfig(),
		Store:            ndb.DefaultConfig(),
		RPC:              rpc.DefaultConfig(),
		Coordinator:      CoordinatorZooKeeper,
		CoordinatorHop:   500 * time.Microsecond,
		Engine:           core.DefaultEngineConfig(),
	}
}

// Cluster is a running λFS metadata service.
type Cluster struct {
	cfg      Config
	clk      clock.Clock
	sim      *clock.Sim // non-nil when running on the DES clock
	db       *ndb.DB
	coord    coordinator.Coordinator
	platform *faas.Platform
	sys      *core.System
	vm       *rpc.VM
	tracer   *trace.Tracer // nil when tracing is off
	registry *telemetry.Registry

	lambdaMeter      *metrics.LambdaMeter
	provisionedMeter *metrics.ProvisionedMeter
	clientSeq        atomic.Uint64
	closed           atomic.Bool
}

// NewCluster starts a λFS cluster.
func NewCluster(cfg Config) (*Cluster, error) {
	def := DefaultConfig()
	if cfg.Deployments <= 0 {
		cfg.Deployments = def.Deployments
	}
	if cfg.NameNodeVCPU <= 0 {
		cfg.NameNodeVCPU = def.NameNodeVCPU
	}
	if cfg.NameNodeRAMGB <= 0 {
		cfg.NameNodeRAMGB = def.NameNodeRAMGB
	}
	if cfg.ConcurrencyLevel <= 0 {
		cfg.ConcurrencyLevel = def.ConcurrencyLevel
	}
	if cfg.Coordinator == "" {
		cfg.Coordinator = def.Coordinator
	}
	if cfg.Store.DataNodes == 0 {
		cfg.Store = def.Store
	}
	if cfg.Platform.TotalVCPU == 0 {
		cfg.Platform = def.Platform
	}
	if cfg.RPC.MaxAttempts == 0 {
		cfg.RPC = def.RPC
	}
	if cfg.Engine.SubtreeBatch == 0 {
		cfg.Engine = def.Engine
	}
	if cfg.TimeScale < 0 {
		return nil, errors.New("lambdafs: negative TimeScale")
	}

	c := &Cluster{cfg: cfg}
	if cfg.TimeScale == 0 {
		c.sim = clock.NewSim()
		c.clk = c.sim
	} else {
		c.clk = clock.NewScaled(cfg.TimeScale)
	}

	// The telemetry plane is always on: every subsystem registers its
	// instruments here (counters and gauges are cheap atomics). A caller-
	// provided registry in any sub-config is honoured; otherwise the
	// cluster creates one, reachable via Telemetry().
	c.registry = cfg.Store.Metrics
	if c.registry == nil {
		c.registry = telemetry.NewRegistry()
	}
	cfg.Store.Metrics = c.registry
	cfg.Platform.Metrics = c.registry
	cfg.RPC.Metrics = c.registry
	cfg.Engine.Metrics = c.registry
	c.cfg = cfg

	c.db = ndb.New(c.clk, cfg.Store)

	coordCfg := coordinator.DefaultConfig()
	coordCfg.HopLatency = cfg.CoordinatorHop
	coordCfg.Metrics = c.registry
	coordCfg.OnCrash = func(id string) { core.CleanupCrashedNameNode(c.db, id) }
	switch cfg.Coordinator {
	case CoordinatorZooKeeper:
		c.coord = coordinator.NewZK(c.clk, coordCfg)
	case CoordinatorNDB:
		coordCfg.HopLatency = cfg.Store.RTT
		c.coord = coordinator.NewNDB(c.clk, coordCfg, c.db)
	default:
		return nil, fmt.Errorf("lambdafs: unknown coordinator %q", cfg.Coordinator)
	}

	c.lambdaMeter = metrics.NewLambdaMeter(clock.Epoch)
	c.provisionedMeter = metrics.NewProvisionedMeter(clock.Epoch)
	if cfg.EnableTracing {
		c.tracer = trace.New(c.clk, cfg.Trace)
	}
	pcfg := cfg.Platform
	pcfg.Lambda = c.lambdaMeter
	pcfg.Provisioned = c.provisionedMeter
	pcfg.Tracer = c.tracer
	c.platform = faas.New(c.clk, pcfg)

	sysCfg := core.SystemConfig{
		Deployments:               cfg.Deployments,
		NameNodeVCPU:              cfg.NameNodeVCPU,
		NameNodeRAMGB:             cfg.NameNodeRAMGB,
		ConcurrencyLevel:          cfg.ConcurrencyLevel,
		MaxInstancesPerDeployment: cfg.MaxInstancesPerDeployment,
		Engine:                    cfg.Engine,
		OffloadLatency:            time.Millisecond,
	}
	sysCfg.Engine.CacheBudget = cfg.CacheBudgetBytes
	c.sys = core.NewSystem(c.clk, c.db, c.coord, c.platform, sysCfg)
	c.vm = rpc.NewVM(c.clk, cfg.RPC)
	c.vm.SetTracer(c.tracer)

	// Cumulative cost, the paper's headline metric (Figures 8/12): both
	// billing models exposed side by side, sampled lazily at scrape time.
	c.registry.GaugeFunc("lambdafs_cost_payperuse_usd", //vet:allow metricnames cost is a cross-cutting subsystem aggregated here, not a package
		func() float64 { return c.lambdaMeter.TotalUSD() })
	c.registry.GaugeFunc("lambdafs_cost_provisioned_usd", //vet:allow metricnames cost is a cross-cutting subsystem aggregated here, not a package
		func() float64 { return c.provisionedMeter.TotalUSD() })
	return c, nil
}

// Telemetry exposes the cluster's metrics registry: every subsystem
// (store, platform, RPC fabric, engines, coordinator, cost meters)
// registers its lambdafs_* instruments here. Scrape it with
// telemetry.NewScraper or expose it with telemetry.Handler.
func (c *Cluster) Telemetry() *telemetry.Registry { return c.registry }

// Clock exposes the cluster's virtual clock.
func (c *Cluster) Clock() clock.Clock { return c.clk }

// Store exposes the persistent metadata store.
func (c *Cluster) Store() *ndb.DB { return c.db }

// Platform exposes the FaaS platform (fault injection, scaling stats).
func (c *Cluster) Platform() *faas.Platform { return c.platform }

// System exposes the λFS core system (diagnostics).
func (c *Cluster) System() *core.System { return c.sys }

// VM exposes the default client VM (its TCP servers are shared by every
// client created with NewClient).
func (c *Cluster) VM() *rpc.VM { return c.vm }

// NewVM creates an additional client VM (clients on distinct VMs do not
// share TCP connections — Figure 4's sharing is per-VM).
func (c *Cluster) NewVM() *rpc.VM {
	vm := rpc.NewVM(c.clk, c.cfg.RPC)
	vm.SetTracer(c.tracer)
	return vm
}

// Tracer exposes the cluster's tracer (nil when Config.EnableTracing is
// false; a nil *trace.Tracer is safe to use as a no-op).
func (c *Cluster) Tracer() *trace.Tracer { return c.tracer }

// Stats summarizes cluster-wide state.
type Stats struct {
	ActiveNameNodes int
	VCPUInUse       float64
	ColdStarts      uint64
	Invocations     uint64
	CacheHits       uint64
	CacheMisses     uint64
	Store           ndb.Stats
	PayPerUseUSD    float64
	ProvisionedUSD  float64
}

// Stats returns a snapshot.
func (c *Cluster) Stats() Stats {
	hits, misses := c.sys.CacheStats()
	ps := c.platform.Stats()
	return Stats{
		ActiveNameNodes: c.platform.ActiveInstances(),
		VCPUInUse:       c.platform.VCPUInUse(),
		ColdStarts:      ps.ColdStarts,
		Invocations:     ps.Invocations,
		CacheHits:       hits,
		CacheMisses:     misses,
		Store:           c.db.Stats(),
		PayPerUseUSD:    c.lambdaMeter.TotalUSD(),
		ProvisionedUSD:  c.provisionedMeter.TotalUSD(),
	}
}

// Meters exposes the billing meters (the evaluation's cost models).
func (c *Cluster) Meters() (*metrics.LambdaMeter, *metrics.ProvisionedMeter) {
	return c.lambdaMeter, c.provisionedMeter
}

// Run executes fn as a clock-registered task and waits for it: on the
// default discrete-event clock, goroutines that sleep or pace against
// virtual time (custom workload drivers) must run inside Run. Client
// methods already do this internally; Run is for driver loops that call
// Clock().Sleep themselves.
func (c *Cluster) Run(fn func()) {
	clock.Run(c.clk, fn)
}

// Close shuts the cluster down: terminates every NameNode instance and
// stops the clock.
func (c *Cluster) Close() {
	if c.closed.Swap(true) {
		return
	}
	// Teardown performs store transactions (coordinator deregistration);
	// run it registered on the DES clock.
	clock.Run(c.clk, c.platform.Close)
	if c.sim != nil {
		c.sim.Close()
	}
}
