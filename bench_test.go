// Benchmarks regenerating the paper's evaluation artifacts, one per table
// and figure (§5). Each benchmark executes a reduced-size instance of the
// corresponding experiment in internal/bench per iteration and reports
// the headline metric via b.ReportMetric; `go run ./cmd/lambdafs-bench`
// runs the full experiments with complete table output.
//
// All numbers are virtual-time measurements from the simulated substrates
// (see DESIGN.md); the reproduction target is the paper's shapes, not its
// absolute testbed numbers.
package lambdafs

import (
	"testing"
	"time"

	"lambdafs/internal/bench"
	"lambdafs/internal/namespace"
)

func benchOpts() bench.Options {
	// Tiny shapes keep the full `go test -bench=. ./...` pass inside
	// Go's default 10-minute test timeout; `cmd/lambdafs-bench` runs the
	// quick/full experiment scales.
	return bench.Options{Quick: true, Tiny: true, Seed: 1}
}

// findRow pulls a numeric-ish cell for reporting; benches mainly assert
// the experiments run end to end and surface headline metrics.
func reportNote(b *testing.B, tables []*bench.Table) {
	b.Helper()
	if len(tables) == 0 || len(tables[0].Rows) == 0 {
		b.Fatal("experiment produced no rows")
	}
}

// BenchmarkTable2OpMix regenerates Table 2 (operation mix).
func BenchmarkTable2OpMix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportNote(b, bench.RunTab2(benchOpts()))
	}
}

// BenchmarkFig8aSpotify25k regenerates Figure 8(a): the bursty Spotify
// workload at a 25k ops/s base on λFS and the serverful baselines.
func BenchmarkFig8aSpotify25k(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		tables := bench.RunFig8(opts, 25000)
		reportNote(b, tables)
	}
}

// BenchmarkFig8bSpotify50k regenerates Figure 8(b) (50k ops/s base).
func BenchmarkFig8bSpotify50k(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		reportNote(b, bench.RunFig8(opts, 50000))
	}
}

// BenchmarkFig9Cost regenerates Figure 9 and Figure 8(c): cumulative cost
// and performance-per-cost under the paper's pricing models.
func BenchmarkFig9Cost(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		reportNote(b, bench.RunFig9(opts))
	}
}

// BenchmarkFig10LatencyCDF regenerates Figure 10 (per-op latency CDFs).
func BenchmarkFig10LatencyCDF(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		reportNote(b, bench.RunFig10(opts))
	}
}

// BenchmarkFig11ClientScaling regenerates Figure 11 (client-driven
// scaling across λFS, HopsFS, HopsFS+Cache, InfiniCache, CephFS).
func BenchmarkFig11ClientScaling(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		reportNote(b, bench.RunFig11(opts))
	}
}

// BenchmarkFig12ResourceScaling regenerates Figure 12 (vCPU scaling).
func BenchmarkFig12ResourceScaling(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		reportNote(b, bench.RunFig12(opts))
	}
}

// BenchmarkFig13PerfPerCost regenerates Figure 13 (performance-per-cost
// vs client count).
func BenchmarkFig13PerfPerCost(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		reportNote(b, bench.RunFig13(opts))
	}
}

// BenchmarkFig14AutoScalingAblation regenerates Figure 14 (auto-scaling
// on / limited / off).
func BenchmarkFig14AutoScalingAblation(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		reportNote(b, bench.RunFig14(opts))
	}
}

// BenchmarkTable3SubtreeMv regenerates Table 3 (subtree mv latency).
func BenchmarkTable3SubtreeMv(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		reportNote(b, bench.RunTab3(opts))
	}
}

// BenchmarkFig15FaultTolerance regenerates Figure 15 (NameNode kills
// under the Spotify workload).
func BenchmarkFig15FaultTolerance(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		reportNote(b, bench.RunFig15(opts))
	}
}

// BenchmarkFig16TreeTest regenerates Figure 16 (λIndexFS vs IndexFS).
func BenchmarkFig16TreeTest(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		reportNote(b, bench.RunFig16(opts))
	}
}

// BenchmarkClientOpLatency measures the end-to-end virtual latency of
// cached reads through the public API (a sanity probe on the TCP fast
// path: ~1 ms per the paper's §3.2).
func BenchmarkClientOpLatency(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Deployments = 4
	cluster, err := NewCluster(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	cl := cluster.NewClient("bench")
	if err := cl.MkdirAll("/bench"); err != nil {
		b.Fatal(err)
	}
	if err := cl.Create("/bench/f"); err != nil {
		b.Fatal(err)
	}
	// Warm the cache and the TCP connection.
	for i := 0; i < 8; i++ {
		if _, err := cl.Stat("/bench/f"); err != nil {
			b.Fatal(err)
		}
	}
	start := cluster.Clock().Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Stat("/bench/f"); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	virtual := cluster.Clock().Since(start)
	b.ReportMetric(float64(virtual.Nanoseconds())/float64(b.N), "virtual-ns/op")
	if perOp := virtual / time.Duration(b.N); perOp > 20*time.Millisecond {
		b.Fatalf("cached stat took %v virtual per op", perOp)
	}
	_ = namespace.OpStat
}
