package lambdafs

import (
	"fmt"

	"lambdafs/internal/clock"
	"lambdafs/internal/namespace"
	"lambdafs/internal/rpc"
)

// Re-exported metadata types so applications need only this package.
type (
	// DirEntry is one row of a directory listing.
	DirEntry = namespace.DirEntry
	// FileInfo describes a file or directory.
	FileInfo = namespace.StatInfo
	// Block is one replicated file data block.
	Block = namespace.Block
)

// Re-exported sentinel errors (errors.Is-compatible end to end).
var (
	ErrNotFound    = namespace.ErrNotFound
	ErrExists      = namespace.ErrExists
	ErrNotDir      = namespace.ErrNotDir
	ErrIsDir       = namespace.ErrIsDir
	ErrSubtreeBusy = namespace.ErrSubtreeBusy
	ErrInvalidPath = namespace.ErrInvalidPath
)

// Client issues file system metadata operations against a Cluster using
// λFS's hybrid HTTP/TCP RPC client library: consistent-hash routing by
// parent directory, TCP fast path with randomized HTTP replacement,
// retries with backoff and jitter, straggler hedging, and anti-thrashing
// (§3.2, §3.4, Appendices B-C).
type Client struct {
	inner *rpc.Client
	clk   clock.Clock
}

// NewClient creates a client on the cluster's default VM.
func (c *Cluster) NewClient(id string) *Client {
	if id == "" {
		id = fmt.Sprintf("client-%d", c.clientSeq.Add(1))
	}
	return &Client{inner: c.vm.NewClient(id, c.sys.Ring(), c.sys), clk: c.clk}
}

// NewClientOnVM creates a client on a specific VM (see Cluster.NewVM).
func (c *Cluster) NewClientOnVM(vm *rpc.VM, id string) *Client {
	if id == "" {
		id = fmt.Sprintf("client-%d", c.clientSeq.Add(1))
	}
	return &Client{inner: vm.NewClient(id, c.sys.Ring(), c.sys), clk: c.clk}
}

func (cl *Client) do(op namespace.OpType, path, dest string) (*namespace.Response, error) {
	resp, err := cl.Do(op, path, dest)
	if err != nil {
		return nil, err
	}
	if !resp.OK() {
		return nil, resp.Error()
	}
	return resp, nil
}

// Create makes a new empty file.
func (cl *Client) Create(path string) error {
	_, err := cl.do(namespace.OpCreate, path, "")
	return err
}

// MkdirAll creates a directory and any missing ancestors; creating an
// existing directory succeeds.
func (cl *Client) MkdirAll(path string) error {
	_, err := cl.do(namespace.OpMkdirs, path, "")
	return err
}

// Stat returns the attributes of a file or directory.
func (cl *Client) Stat(path string) (FileInfo, error) {
	resp, err := cl.do(namespace.OpStat, path, "")
	if err != nil {
		return FileInfo{}, err
	}
	return *resp.Stat, nil
}

// Open resolves a file and returns its attributes and block locations
// (the HDFS open/getBlockLocations read path).
func (cl *Client) Open(path string) (FileInfo, []Block, error) {
	resp, err := cl.do(namespace.OpRead, path, "")
	if err != nil {
		return FileInfo{}, nil, err
	}
	return *resp.Stat, resp.Blocks, nil
}

// List returns the entries of a directory (or the file itself for a file
// path, HDFS-style).
func (cl *Client) List(path string) ([]DirEntry, error) {
	resp, err := cl.do(namespace.OpLs, path, "")
	if err != nil {
		return nil, err
	}
	return resp.Entries, nil
}

// Rename moves a file or directory; directory moves run the subtree
// protocol (Appendix D).
func (cl *Client) Rename(src, dest string) error {
	_, err := cl.do(namespace.OpMv, src, dest)
	return err
}

// Remove deletes a file, or a directory recursively.
func (cl *Client) Remove(path string) error {
	_, err := cl.do(namespace.OpDelete, path, "")
	return err
}

// Do exposes the raw operation interface used by the workload drivers.
// On the DES clock the operation is shuttled into a simulation-registered
// goroutine, so applications may call it from anywhere.
func (cl *Client) Do(op namespace.OpType, path, dest string) (resp *namespace.Response, err error) {
	clock.Run(cl.clk, func() {
		resp, err = cl.inner.Do(op, path, dest)
	})
	return resp, err
}

// Stats returns the client's RPC counters.
func (cl *Client) Stats() rpc.ClientStats { return cl.inner.Stats() }
