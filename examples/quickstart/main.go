// Quickstart: boot a λFS cluster, run basic file system operations, and
// inspect what the serverless metadata service did under the hood.
package main

import (
	"fmt"
	"log"

	"lambdafs"
)

func main() {
	// A default cluster: 16 serverless NameNode deployments over an
	// NDB-like store with a ZooKeeper-like coordinator, running on the
	// discrete-event clock (instant wall-clock, exact virtual latencies).
	cluster, err := lambdafs.NewCluster(lambdafs.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	client := cluster.NewClient("quickstart")

	// Namespace operations look like any DFS client API; under the hood
	// the first op HTTP-invokes a serverless NameNode, which then opens
	// a TCP connection back for the fast path.
	must(client.MkdirAll("/apps/web/logs"))
	must(client.Create("/apps/web/logs/access.log"))
	must(client.Create("/apps/web/logs/error.log"))

	entries, err := client.List("/apps/web/logs")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("listing of /apps/web/logs:")
	for _, e := range entries {
		fmt.Printf("  %s (id=%d)\n", e.Name, e.ID)
	}

	// Reads are served from the NameNode metadata cache once warm: the
	// first Open fills the cache, the repeats hit it.
	info, _, err := client.Open("/apps/web/logs/access.log")
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := client.Open("/apps/web/logs/access.log"); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("opened %s: inode %d, perm %o\n", info.Path, info.ID, info.Perm)

	// Rename and recursive delete exercise the coherence and subtree
	// protocols.
	must(client.Rename("/apps/web/logs/error.log", "/apps/web/logs/error.old"))
	must(client.Remove("/apps/web"))
	if _, err := client.Stat("/apps/web"); err == nil {
		log.Fatal("subtree delete left /apps/web behind")
	}

	s := cluster.Stats()
	fmt.Printf("\ncluster after the run:\n")
	fmt.Printf("  active NameNodes: %d (%.1f vCPU), cold starts: %d\n",
		s.ActiveNameNodes, s.VCPUInUse, s.ColdStarts)
	fmt.Printf("  cache: %d hits / %d misses\n", s.CacheHits, s.CacheMisses)
	fmt.Printf("  store: %d reads, %d commits\n", s.Store.Reads, s.Store.Commits)
	fmt.Printf("  pay-per-use cost: $%.6f\n", s.PayPerUseUSD)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
