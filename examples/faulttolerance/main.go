// Fault tolerance demo (§5.6): run a steady read/write load against λFS
// while killing one serverless NameNode every few seconds, round-robin
// across deployments. Clients transparently fail over (retry via other
// TCP connections, then HTTP), the Coordinator breaks the dead NameNodes'
// store locks, and the platform re-provisions — the workload completes
// with zero lost operations.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"lambdafs"
)

const (
	deployments = 8
	clients     = 32
	duration    = 30 * time.Second
	killEvery   = 3 * time.Second
)

func main() {
	cfg := lambdafs.DefaultConfig()
	cfg.Deployments = deployments
	cluster, err := lambdafs.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	clk := cluster.Clock()

	seed := cluster.NewClient("seeder")
	var files []string
	for d := 0; d < 8; d++ {
		dir := fmt.Sprintf("/ft/d%d", d)
		must(seed.MkdirAll(dir))
		for f := 0; f < 16; f++ {
			p := fmt.Sprintf("%s/f%02d", dir, f)
			must(seed.Create(p))
			files = append(files, p)
		}
	}

	var ok, failed, kills atomic.Uint64
	stop := make(chan struct{})

	// The assassin: one NameNode killed every killEvery, round-robin.
	var killWG sync.WaitGroup
	killWG.Add(1)
	go func() {
		defer killWG.Done()
		cluster.Run(func() {
			dep := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				clk.Sleep(killEvery)
				if cluster.Platform().KillOneInstance(dep % deployments) {
					kills.Add(1)
				}
				dep++
			}
		})
	}()

	var wg sync.WaitGroup
	start := clk.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cluster.Run(func() {
				client := cluster.NewClient(fmt.Sprintf("c%02d", c))
				clientSeed := int64(c) // per-client stream, deterministic in the client index
				rng := rand.New(rand.NewSource(clientSeed))
				for clk.Since(start) < duration {
					p := files[rng.Intn(len(files))]
					if _, err := client.Stat(p); err != nil {
						failed.Add(1)
					} else {
						ok.Add(1)
					}
				}
			})
		}(c)
	}
	wg.Wait()
	close(stop)
	killWG.Wait()

	s := cluster.Stats()
	fmt.Printf("ran %v of continuous load with a NameNode killed every %v\n", duration, killEvery)
	fmt.Printf("  NameNodes killed:      %d\n", kills.Load())
	fmt.Printf("  operations completed:  %d\n", ok.Load())
	fmt.Printf("  operations failed:     %d\n", failed.Load())
	fmt.Printf("  cold starts (recovery): %d, live NameNodes now: %d\n", s.ColdStarts, s.ActiveNameNodes)
	if failed.Load() > 0 {
		log.Fatal("fault tolerance demo lost operations")
	}
	fmt.Println("no operation was lost: clients resubmitted transparently (§3.2, §3.6)")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
