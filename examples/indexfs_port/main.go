// λIndexFS port demo (§5.7, Figure 7): the same tree-test workload runs
// against vanilla IndexFS (fixed servers over LevelDB-like LSM partitions)
// and against λIndexFS (serverless caching functions in front of the same
// LSM partitions, reusing λFS's client library and FaaS platform),
// showing the read-side win from function-memory caching.
package main

import (
	"fmt"
	"log"
	"time"

	"lambdafs/internal/clock"
	"lambdafs/internal/faas"
	"lambdafs/internal/indexfs"
	"lambdafs/internal/rpc"
	"lambdafs/internal/workload"
)

// λIndexFS's advantage is elasticity: at low client counts the two are
// comparable (λIndexFS even pays a small latency premium for the TCP-RPC
// hop), but once the fixed IndexFS servers saturate, λIndexFS keeps
// scaling out — so the demo drives enough clients to reach saturation.
const (
	clients = 192
	writes  = 600
	reads   = 600
)

func main() {
	fmt.Printf("tree-test: %d clients × (%d mknods + %d getattrs)\n\n", clients, writes, reads)

	// --- vanilla IndexFS ---
	clk1 := clock.NewSim()
	cluster := indexfs.New(clk1, indexfs.DefaultConfig())
	var vres workload.TreeTestResult
	clock.Run(clk1, func() {
		vres = workload.RunTreeTest(clk1, workload.TreeTestConfig{
			Clients: clients, WritesPerClient: writes, ReadsPerClient: reads, Seed: 1,
		}, func(i int) workload.TreeTestFS {
			return vanillaFS{cluster.NewClient(fmt.Sprintf("c%d", i))}
		})
	})
	clk1.Close()
	report("IndexFS ", vres)
	st := cluster.LSMStats()
	fmt.Printf("  LSM: %d puts, %d gets, %d flushes, %d compactions\n\n",
		st.Puts, st.Gets, st.Flushes, st.Compactions)

	// --- λIndexFS ---
	clk2 := clock.NewSim()
	defer clk2.Close()
	fCfg := faas.DefaultConfig()
	fCfg.TotalVCPU = 64 // the paper's OpenWhisk cluster for §5.7
	fCfg.GatewayLatency = 4 * time.Millisecond
	var platform *faas.Platform
	var sys *indexfs.LambdaSystem
	clock.Run(clk2, func() {
		platform = faas.New(clk2, fCfg)
		sys = indexfs.NewLambda(clk2, platform, indexfs.DefaultLambdaConfig())
	})
	defer platform.Close()
	vm := rpc.NewVM(clk2, rpc.DefaultConfig())
	var lres workload.TreeTestResult
	clock.Run(clk2, func() {
		lres = workload.RunTreeTest(clk2, workload.TreeTestConfig{
			Clients: clients, WritesPerClient: writes, ReadsPerClient: reads, Seed: 1,
		}, func(i int) workload.TreeTestFS {
			return lambdaFS{sys.NewClient(vm, fmt.Sprintf("c%d", i))}
		})
	})
	report("λIndexFS", lres)
	fmt.Printf("  serverless functions live: %d\n\n", platform.ActiveInstances())

	if lres.ReadThroughput() <= vres.ReadThroughput() {
		log.Fatal("expected λIndexFS's cached reads to beat vanilla IndexFS")
	}
	fmt.Printf("λIndexFS read speedup over IndexFS: %.2fx (function-memory cache, §5.7)\n",
		lres.ReadThroughput()/vres.ReadThroughput())
}

func report(name string, r workload.TreeTestResult) {
	fmt.Printf("%s: write %8.0f ops/s | read %8.0f ops/s | agg %8.0f ops/s\n",
		name, r.WriteThroughput(), r.ReadThroughput(), r.AggThroughput())
}

type vanillaFS struct{ c *indexfs.Client }

func (f vanillaFS) Mknod(p string) error { return f.c.Mknod(p) }
func (f vanillaFS) Getattr(p string) (bool, error) {
	_, ok, err := f.c.Getattr(p)
	return ok, err
}

type lambdaFS struct{ c *indexfs.LambdaClient }

func (f lambdaFS) Mknod(p string) error { return f.c.Mknod(p) }
func (f lambdaFS) Getattr(p string) (bool, error) {
	_, ok, err := f.c.Getattr(p)
	return ok, err
}
