// Spotify workload demo: replays a scaled-down version of the paper's
// industrial workload (§5.2) against a λFS cluster — Table 2's operation
// mix under a bursty Pareto arrival process — and prints the throughput
// timeline with the number of active serverless NameNodes, showing the
// elastic scale-out around the bursts.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"
	"sync"
	"time"

	"lambdafs"
)

const (
	clients  = 64
	baseRate = 2000.0 // aggregate ops/sec
	duration = 45 * time.Second
	redraw   = 15 * time.Second
)

func main() {
	cfg := lambdafs.DefaultConfig()
	cfg.Deployments = 8
	cluster, err := lambdafs.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	clk := cluster.Clock()

	// Pre-create a working set.
	seed := cluster.NewClient("seeder")
	var files []string
	for d := 0; d < 16; d++ {
		dir := fmt.Sprintf("/data/set%02d", d)
		if err := seed.MkdirAll(dir); err != nil {
			log.Fatal(err)
		}
		for f := 0; f < 20; f++ {
			p := fmt.Sprintf("%s/file%03d", dir, f)
			if err := seed.Create(p); err != nil {
				log.Fatal(err)
			}
			files = append(files, p)
		}
	}

	// Pareto(α=2) bursty targets, redrawn every 15 s, capped at 7x.
	targets = make([]float64, int(duration/redraw)+1)
	const workloadSeed = 42 // fixed seed: the demo replays identically run-to-run
	rng := rand.New(rand.NewSource(workloadSeed))
	for i := range targets {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		t := baseRate / (u * u / 2) // Pareto-ish draw
		if t < baseRate {
			t = baseRate
		}
		if t > 7*baseRate {
			t = 7 * baseRate
		}
		targets[i] = t
	}
	fmt.Print("per-interval targets (ops/s): ")
	for _, t := range targets {
		fmt.Printf("%.0f ", t)
	}
	fmt.Println()

	var wg sync.WaitGroup
	start := clk.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		// Driver loops pace against virtual time, so they run inside
		// cluster.Run (registered with the discrete-event clock).
		go func(c int) {
			defer wg.Done()
			cluster.Run(func() { driveClient(cluster, files, start, c) })
		}(c)
	}
	wg.Wait()

	fmt.Println("\nthroughput timeline (each ▒ ≈ 250 ops/s):")
	for sec := 0; sec < int(duration/time.Second); sec++ {
		n := load(&completed, sec)
		bar := strings.Repeat("▒", n/250)
		fmt.Printf("t=%3ds %6d ops/s %s\n", sec, n, bar)
	}
	s := cluster.Stats()
	fmt.Printf("\nλFS scaled to %d NameNodes (%.0f vCPU); cache hits %d / misses %d; cost $%.4f\n",
		s.ActiveNameNodes, s.VCPUInUse, s.CacheHits, s.CacheMisses, s.PayPerUseUSD)
}

func bump(m *sync.Map, k int) {
	v, _ := m.LoadOrStore(k, new(int))
	*(v.(*int))++
}

func load(m *sync.Map, k int) int {
	if v, ok := m.Load(k); ok {
		return *(v.(*int))
	}
	return 0
}

var (
	completed, failed sync.Map
	targets           []float64
)

// driveClient sustains this client's share of the bursty target rate,
// rolling unfinished quota over to the next second (§5.2.1).
func driveClient(cluster *lambdafs.Cluster, files []string, start time.Time, c int) {
	clk := cluster.Clock()
	client := cluster.NewClient(fmt.Sprintf("app-%02d", c))
	clientSeed := int64(c) // per-client stream, deterministic in the client index
	rng := rand.New(rand.NewSource(clientSeed))
	quota := 0.0
	for sec := 0; sec < int(duration/time.Second); sec++ {
		quota += targets[sec/int(redraw/time.Second)] / clients
		deadline := start.Add(time.Duration(sec+1) * time.Second)
		for quota >= 1 && clk.Now().Before(deadline) {
			quota--
			p := files[rng.Intn(len(files))]
			var err error
			switch x := rng.Float64(); {
			case x < 0.9523: // reads (Table 2)
				_, err = client.Stat(p)
			default:
				np := fmt.Sprintf("%s.new%d", p, rng.Int())
				if err = client.Create(np); err == nil {
					err = client.Remove(np)
				}
			}
			bucket := int(clk.Since(start) / time.Second)
			if err != nil {
				bump(&failed, bucket)
			} else {
				bump(&completed, bucket)
			}
		}
		if remain := deadline.Sub(clk.Now()); remain > 0 {
			clk.Sleep(remain)
		}
	}
}
