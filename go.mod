module lambdafs

go 1.22
