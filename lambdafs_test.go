package lambdafs

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// quickConfig keeps public-API tests fast: tiny latencies, DES clock.
func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.Deployments = 4
	cfg.NameNodeVCPU = 2
	cfg.NameNodeRAMGB = 2
	cfg.Platform.ColdStart = time.Millisecond
	cfg.Platform.GatewayLatency = time.Millisecond
	cfg.Platform.IdleReclaim = 0
	cfg.RPC.Hedging = false
	return cfg
}

func newTestCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestPublicAPILifecycle(t *testing.T) {
	c := newTestCluster(t, quickConfig())
	cl := c.NewClient("")

	if err := cl.MkdirAll("/projects/alpha"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Create("/projects/alpha/readme.md"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Create("/projects/alpha/readme.md"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	info, err := cl.Stat("/projects/alpha/readme.md")
	if err != nil || info.IsDir {
		t.Fatalf("stat: %+v %v", info, err)
	}
	if _, _, err := cl.Open("/projects/alpha/readme.md"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Open("/projects/alpha"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("open dir: %v", err)
	}
	entries, err := cl.List("/projects/alpha")
	if err != nil || len(entries) != 1 || entries[0].Name != "readme.md" {
		t.Fatalf("list: %v %v", entries, err)
	}
	if err := cl.Rename("/projects/alpha/readme.md", "/projects/alpha/README.md"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Stat("/projects/alpha/readme.md"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("old name survived rename: %v", err)
	}
	if err := cl.Remove("/projects"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Stat("/projects/alpha"); !errors.Is(err, ErrNotFound) {
		t.Fatal("subtree delete incomplete")
	}
}

func TestClusterStatsPopulated(t *testing.T) {
	c := newTestCluster(t, quickConfig())
	cl := c.NewClient("stats")
	for i := 0; i < 10; i++ {
		if err := cl.MkdirAll(fmt.Sprintf("/s/%d", i)); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Stat(fmt.Sprintf("/s/%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.ActiveNameNodes == 0 {
		t.Fatal("no active NameNodes")
	}
	if st.Invocations == 0 {
		t.Fatal("no invocations counted")
	}
	if st.Store.Commits == 0 {
		t.Fatal("no store commits")
	}
	if st.PayPerUseUSD <= 0 {
		t.Fatal("no pay-per-use cost accrued")
	}
	lm, pm := c.Meters()
	if lm == nil || pm == nil {
		t.Fatal("meters missing")
	}
}

func TestNDBCoordinatorVariant(t *testing.T) {
	cfg := quickConfig()
	cfg.Coordinator = CoordinatorNDB
	c := newTestCluster(t, cfg)
	cl := c.NewClient("ndbcoord")
	if err := cl.MkdirAll("/co"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Create("/co/f"); err != nil {
		t.Fatal(err)
	}
	// Coherence through the NDB-backed coordinator.
	cl2 := c.NewClient("reader")
	if _, err := cl2.Stat("/co/f"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Remove("/co/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl2.Stat("/co/f"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stale read through NDB coordinator: %v", err)
	}
}

func TestUnknownCoordinatorRejected(t *testing.T) {
	cfg := quickConfig()
	cfg.Coordinator = CoordinatorKind("etcd")
	if _, err := NewCluster(cfg); err == nil {
		t.Fatal("unknown coordinator accepted")
	}
	cfg = quickConfig()
	cfg.TimeScale = -1
	if _, err := NewCluster(cfg); err == nil {
		t.Fatal("negative TimeScale accepted")
	}
}

func TestMultiVMClientsShareNothingAcrossVMs(t *testing.T) {
	c := newTestCluster(t, quickConfig())
	vm2 := c.NewVM()
	a := c.NewClient("a")
	b := c.NewClientOnVM(vm2, "b")
	if err := a.MkdirAll("/vmtest"); err != nil {
		t.Fatal(err)
	}
	// Both clients operate correctly despite separate TCP server pools.
	if err := b.Create("/vmtest/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Stat("/vmtest/f"); err != nil {
		t.Fatal(err)
	}
	if a.Stats().HTTPRPCs == 0 || b.Stats().HTTPRPCs == 0 {
		t.Fatal("both VMs should have issued HTTP RPCs to bootstrap connections")
	}
}

func TestConcurrentClientsOnSimClock(t *testing.T) {
	c := newTestCluster(t, quickConfig())
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := c.NewClient(fmt.Sprintf("w%d", w))
			dir := fmt.Sprintf("/conc/%d", w)
			if err := cl.MkdirAll(dir); err != nil {
				errs <- err
				return
			}
			for i := 0; i < 10; i++ {
				if err := cl.Create(fmt.Sprintf("%s/f%d", dir, i)); err != nil {
					errs <- err
					return
				}
			}
			if entries, err := cl.List(dir); err != nil || len(entries) != 10 {
				errs <- fmt.Errorf("list %s: %d entries, %v", dir, len(entries), err)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if ht := c.Clock().Since(c.Clock().Now().Add(-time.Nanosecond)); ht < 0 {
		t.Fatal("clock misbehaving")
	}
}

func TestScaledClockVariant(t *testing.T) {
	cfg := quickConfig()
	cfg.TimeScale = 0.001 // 1000x faster than real time
	c := newTestCluster(t, cfg)
	cl := c.NewClient("scaled")
	if err := cl.MkdirAll("/scaled"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Stat("/scaled"); err != nil {
		t.Fatal(err)
	}
}

func TestCloseIdempotentAndTerminal(t *testing.T) {
	c := newTestCluster(t, quickConfig())
	cl := c.NewClient("x")
	if err := cl.MkdirAll("/pre"); err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close()
	if got := c.Platform().ActiveInstances(); got != 0 {
		t.Fatalf("instances alive after close: %d", got)
	}
}
