package lambdafs_test

import (
	"errors"
	"fmt"
	"log"

	"lambdafs"
)

// Example shows the minimal lifecycle: boot a cluster, create metadata,
// read it back.
func Example() {
	cfg := lambdafs.DefaultConfig()
	cfg.Deployments = 4
	cluster, err := lambdafs.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	client := cluster.NewClient("example")
	if err := client.MkdirAll("/photos/2023"); err != nil {
		log.Fatal(err)
	}
	if err := client.Create("/photos/2023/cat.jpg"); err != nil {
		log.Fatal(err)
	}
	entries, err := client.List("/photos/2023")
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range entries {
		fmt.Println(e.Name)
	}
	// Output:
	// cat.jpg
}

// ExampleClient_Rename demonstrates rename semantics, including the
// sentinel errors that survive the RPC boundary.
func ExampleClient_Rename() {
	cluster, err := lambdafs.NewCluster(lambdafs.Config{Deployments: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	client := cluster.NewClient("renamer")
	client.MkdirAll("/inbox")
	client.Create("/inbox/draft.txt")

	if err := client.Rename("/inbox/draft.txt", "/inbox/final.txt"); err != nil {
		log.Fatal(err)
	}
	_, err = client.Stat("/inbox/draft.txt")
	fmt.Println("old name gone:", errors.Is(err, lambdafs.ErrNotFound))

	err = client.Rename("/inbox/missing.txt", "/inbox/x")
	fmt.Println("missing source:", errors.Is(err, lambdafs.ErrNotFound))
	// Output:
	// old name gone: true
	// missing source: true
}

// ExampleCluster_Stats shows cluster introspection after some traffic.
func ExampleCluster_Stats() {
	cluster, err := lambdafs.NewCluster(lambdafs.Config{Deployments: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	client := cluster.NewClient("observer")
	client.MkdirAll("/d")
	client.Create("/d/f")
	client.Stat("/d/f") // cache fill
	client.Stat("/d/f") // cache hit

	s := cluster.Stats()
	fmt.Println("NameNodes running:", s.ActiveNameNodes > 0)
	fmt.Println("cache hits:", s.CacheHits > 0)
	fmt.Println("store commits:", s.Store.Commits > 0)
	// Output:
	// NameNodes running: true
	// cache hits: true
	// store commits: true
}
