#!/bin/sh
# Repo health check: formatting, vet, the in-repo lambdafs-vet analyzer,
# build, full test suite, the race detector over the concurrency-heavy
# packages (tracer, metrics, telemetry plane, FaaS platform, RPC fabric,
# chaos harness, coordinator, NDB, LSM, core, tenant), bounded fixed-seed
# chaos, crash-restart, alert-coverage, and discrete-event-scale smoke
# runs, and the perf/durability/scale baseline gates. Run before sending
# changes.
set -e

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l . 2>/dev/null || true)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:"
    echo "$unformatted"
    gofmt -d $unformatted
    exit 1
fi
echo "ok"

echo "== go vet =="
go vet ./...

echo "== lambdafs-vet (virtualtime/determinism/locks/spans/errcheck/metricnames/slorules + lockorder/hotpath; fails on stale allows) =="
vetout=$(mktemp)
if ! go run ./cmd/lambdafs-vet -json ./... >"$vetout" 2>&1; then
    cat "$vetout"
    rm -f "$vetout"
    exit 1
fi
rm -f "$vetout"
echo "ok"

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (trace, metrics, telemetry, faas, rpc, chaos, coordinator, ndb, lsm, core, tenant) =="
go test -race ./internal/trace/ ./internal/metrics/ ./internal/telemetry/ ./internal/faas/ ./internal/rpc/ ./internal/chaos/ ./internal/coordinator/ ./internal/ndb/ ./internal/lsm/ ./internal/core/ ./internal/tenant/

echo "== chaos smoke (bounded, fixed seed) =="
go test ./internal/chaos/ -run TestChaosRandomized -chaosseed 3 -count=1

echo "== crash-restart smoke (durability: WAL torn-tail sweep + episode battery) =="
go test ./internal/ndb/ -run TestWALTornTailPrefixRecovery -count=1
go test ./internal/chaos/ -run 'TestCrashRestartEpisodes|TestCrashRestartCatchesSabotage' -count=1

echo "== alert-coverage smoke (every episode family's must-fire/must-not-fire contract + muted-alert sabotage) =="
go test ./internal/chaos/ -run 'TestAlertCoverage|TestAlertCoverageCatchesMutedAlert|TestAlertEpisodeDigestStable|TestTenantStormContract|TestTenantStormMutedAlertCaught' -count=1

echo "== scale smoke (event-heap determinism, FIFO stability, 100k-client wall/alloc budget) =="
go test ./internal/sim/ -run 'TestSchedulerDeterminism|TestHeapFIFOStability|TestHundredKClientBudget' -count=1

echo "== hotpath perf baseline (quick mode; gates batched throughput, allocs/op, lock-wait/op) =="
go run ./cmd/lambdafs-bench -checkbaseline BENCH_hotpath.json

echo "== restart durability baseline (quick mode; gates digest-exact recovery, replayed records, recovery time) =="
go run ./cmd/lambdafs-bench -checkrestartbaseline BENCH_restart.json

echo "== scale baseline (quick mode; gates the bit-exact client-count sweep: digests, op/throttle counts, quantiles, shard counts) =="
go run ./cmd/lambdafs-bench -checkscalebaseline BENCH_scale.json

echo "== profiling smoke =="
profdir=$(mktemp -d)
trap 'rm -rf "$profdir"' EXIT
go run ./cmd/lambdafs-bench -pprof "$profdir" hotpath >/dev/null
for suffix in cpu heap mutex block; do
    f="$profdir/hotpath.$suffix.pprof"
    if [ ! -s "$f" ]; then
        echo "profiling smoke: $f missing or empty"
        exit 1
    fi
done
echo "ok"

echo "all checks passed"
