#!/bin/sh
# Repo health check: formatting, vet, build, full test suite, and the race
# detector over the concurrency-heavy packages (tracer, metrics, FaaS
# platform, RPC fabric). Run before sending changes.
set -e

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l . 2>/dev/null | grep -v '^related/' || true)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:"
    echo "$unformatted"
    exit 1
fi
echo "ok"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (trace, metrics, faas, rpc) =="
go test -race ./internal/trace/ ./internal/metrics/ ./internal/faas/ ./internal/rpc/

echo "all checks passed"
